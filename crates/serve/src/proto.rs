//! The wire protocol: framing, message encoding, spec canonicalization
//! and the result-image format.
//!
//! # Framing
//!
//! Every message is one frame: a little-endian `u32` payload length
//! (capped at [`MAX_FRAME`]) followed by that many payload bytes. The
//! payload is a one-byte message tag followed by the tag's body, encoded
//! with the `chainiq_ckpt` writer/reader primitives (the same
//! little-endian, length-prefixed encoding checkpoint images use).
//!
//! # Versioning
//!
//! The first client frame must be [`ClientMsg::Hello`]: the [`MAGIC`]
//! bytes plus the client's [`PROTO_VERSION`]. The server rejects a
//! mismatched magic or version with [`ServerMsg::Error`] before reading
//! anything else, so an old client never silently misparses a new
//! server (or vice versa). Any change to the frame layout, a message
//! body, or the spec encoding must bump [`PROTO_VERSION`].
//!
//! # Cache-key derivation
//!
//! [`spec_key`] is the FNV-1a fingerprint of the spec's canonical
//! encoding ([`pack_spec`]): every field of the benchmark name, the
//! full queue geometry, the predictor configuration, the sample length
//! and the workload seed. Two specs collide only if they are the same
//! experiment, so the key doubles as the content address of the result
//! image — and as the single-flight identity of an in-flight job.

use std::io::{Read, Write};

use chainiq::ckpt::{
    fingerprint, CkptError, CkptHeader, ImageReader, ImageWriter, Pack, Reader, Snapshot, Writer,
};
use chainiq::{
    Bench, DistanceConfig, IqKind, PrescheduleConfig, RunResult, SegmentedIqConfig, SimStats,
};
use chainiq_bench::{PredictorConfig, RunSpec};

/// Leading bytes of the Hello frame ("CHAINIQ Serve").
pub const MAGIC: [u8; 8] = *b"CHAINIQS";

/// Protocol version; bump on any change to framing, messages, or the
/// spec/result encodings.
pub const PROTO_VERSION: u16 = 1;

/// Hard ceiling on one frame's payload, so a corrupt or hostile length
/// prefix cannot ask the peer to allocate without bound.
pub const MAX_FRAME: u32 = 64 << 20;

/// Why a protocol operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The peer sent bytes this build cannot understand (bad magic,
    /// version, tag, or body).
    Proto(String),
    /// The server answered with a typed [`ServerMsg::Error`].
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Proto(m) => write!(f, "serve protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CkptError> for ServeError {
    fn from(e: CkptError) -> Self {
        ServeError::Proto(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
/// [`ServeError::Proto`] if the payload exceeds [`MAX_FRAME`],
/// [`ServeError::Io`] on socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    let len = u32::try_from(payload.len()).ok().filter(|&l| l <= MAX_FRAME).ok_or_else(|| {
        ServeError::Proto(format!("frame of {} bytes exceeds cap", payload.len()))
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
///
/// # Errors
/// [`ServeError::Proto`] on an over-cap length, [`ServeError::Io`] on a
/// short or failed read.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ServeError::Proto(format!("declared frame of {len} bytes exceeds cap")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Spec canonicalization
// ---------------------------------------------------------------------------

/// Appends the canonical encoding of `spec` — the bytes [`spec_key`]
/// fingerprints and [`ClientMsg::Submit`] carries.
pub fn pack_spec(spec: &RunSpec, w: &mut Writer) {
    w.put_str(spec.bench.name());
    match spec.iq {
        IqKind::Ideal(entries) => {
            w.put_u8(0);
            entries.pack(w);
        }
        IqKind::Segmented(c) => {
            w.put_u8(1);
            c.num_segments.pack(w);
            c.segment_size.pack(w);
            c.promote_width.pack(w);
            c.max_chains.pack(w);
            c.pushdown.pack(w);
            c.bypass.pack(w);
            c.two_chain_tracking.pack(w);
            c.deadlock_recovery.pack(w);
            c.predicted_load_latency.pack(w);
            c.countdown_includes_descent.pack(w);
        }
        IqKind::Prescheduled(c) => {
            w.put_u8(2);
            c.issue_buffer_size.pack(w);
            c.num_lines.pack(w);
            c.line_width.pack(w);
            c.predicted_load_latency.pack(w);
        }
        IqKind::Distance(c) => {
            w.put_u8(3);
            c.wait_buffer_size.pack(w);
            c.num_lines.pack(w);
            c.line_width.pack(w);
            c.predicted_load_latency.pack(w);
        }
    }
    let pred = PredictorConfig::ALL.iter().position(|p| *p == spec.pred).unwrap_or(0);
    w.put_u8(pred as u8);
    spec.sample.pack(w);
    spec.seed.pack(w);
}

/// Reads back one [`pack_spec`] encoding, validating every field so a
/// malformed submission is a typed error — never a panicking or hanging
/// simulator construction.
///
/// # Errors
/// [`ServeError::Proto`] on an unknown benchmark, queue tag or
/// predictor index, or a degenerate queue geometry.
pub fn unpack_spec(r: &mut Reader<'_>) -> Result<RunSpec, ServeError> {
    let bench_name = r.take_str("bench name")?;
    let bench = Bench::from_name(&bench_name).map_err(ServeError::Proto)?;
    let iq = match r.take_u8("iq tag")? {
        0 => {
            let entries = require_nonzero(usize::unpack(r)?, "ideal queue entries")?;
            IqKind::Ideal(entries)
        }
        1 => IqKind::Segmented(SegmentedIqConfig {
            num_segments: require_nonzero(usize::unpack(r)?, "segment count")?,
            segment_size: require_nonzero(usize::unpack(r)?, "segment size")?,
            promote_width: require_nonzero(usize::unpack(r)?, "promote width")?,
            max_chains: Option::unpack(r)?,
            pushdown: bool::unpack(r)?,
            bypass: bool::unpack(r)?,
            two_chain_tracking: bool::unpack(r)?,
            deadlock_recovery: bool::unpack(r)?,
            predicted_load_latency: i64::unpack(r)?,
            countdown_includes_descent: bool::unpack(r)?,
        }),
        2 => IqKind::Prescheduled(PrescheduleConfig {
            issue_buffer_size: require_nonzero(usize::unpack(r)?, "issue buffer size")?,
            num_lines: require_nonzero(usize::unpack(r)?, "scheduling lines")?,
            line_width: require_nonzero(usize::unpack(r)?, "line width")?,
            predicted_load_latency: u64::unpack(r)?,
        }),
        3 => IqKind::Distance(DistanceConfig {
            wait_buffer_size: require_nonzero(usize::unpack(r)?, "wait buffer size")?,
            num_lines: require_nonzero(usize::unpack(r)?, "scheduling lines")?,
            line_width: require_nonzero(usize::unpack(r)?, "line width")?,
            predicted_load_latency: u64::unpack(r)?,
        }),
        other => return Err(ServeError::Proto(format!("unknown iq tag {other}"))),
    };
    let pred_idx = r.take_u8("predictor index")? as usize;
    let pred = *PredictorConfig::ALL
        .get(pred_idx)
        .ok_or_else(|| ServeError::Proto(format!("unknown predictor index {pred_idx}")))?;
    let sample = u64::unpack(r)?;
    let seed = u64::unpack(r)?;
    Ok(RunSpec::new(bench, iq, pred, sample).with_seed(seed))
}

fn require_nonzero(v: usize, what: &str) -> Result<usize, ServeError> {
    if v == 0 {
        return Err(ServeError::Proto(format!("{what} must be nonzero")));
    }
    Ok(v)
}

/// The content-address of a spec's result: the fingerprint of its
/// canonical encoding. Doubles as the single-flight job identity.
#[must_use]
pub fn spec_key(spec: &RunSpec) -> u64 {
    let mut w = Writer::new();
    pack_spec(spec, &mut w);
    fingerprint(w.bytes())
}

/// The result-cache file name for a spec key.
#[must_use]
pub fn entry_name(key: u64) -> String {
    format!("res-{key:016x}.bin")
}

// ---------------------------------------------------------------------------
// Server-side accounting
// ---------------------------------------------------------------------------

/// Daemon counters, returned over the wire by [`ServerMsg::Stats`].
///
/// These methods are determinism sinks under `chainiq-analyze` rule T1:
/// nothing here may reach a wall-clock or environment read, so the
/// numbers a client sees are a pure function of the submissions the
/// server handled.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Specs received inside accepted (non-Busy) grids.
    pub submitted: u64,
    /// Specs answered straight from the result cache.
    pub hits: u64,
    /// Specs collapsed onto an already in-flight identical job.
    pub joined: u64,
    /// Specs actually simulated by a worker.
    pub simulated: u64,
    /// Whole grids refused with [`ServerMsg::Busy`].
    pub busy: u64,
    /// Result images that could not be written to the cache (the
    /// response was still served from memory).
    pub store_failures: u64,
    /// Cache entries evicted by the size/entry cap since startup.
    pub evicted: u64,
}

impl Pack for ServeStats {
    fn pack(&self, w: &mut Writer) {
        self.submitted.pack(w);
        self.hits.pack(w);
        self.joined.pack(w);
        self.simulated.pack(w);
        self.busy.pack(w);
        self.store_failures.pack(w);
        self.evicted.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(ServeStats {
            submitted: Pack::unpack(r)?,
            hits: Pack::unpack(r)?,
            joined: Pack::unpack(r)?,
            simulated: Pack::unpack(r)?,
            busy: Pack::unpack(r)?,
            store_failures: Pack::unpack(r)?,
            evicted: Pack::unpack(r)?,
        })
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted: {} hits, {} joined, {} simulated, {} busy, {} evicted",
            self.submitted, self.hits, self.joined, self.simulated, self.busy, self.evicted
        )
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Handshake: magic plus the client's protocol version. Must be the
    /// first frame on a connection.
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u16,
    },
    /// A grid of specs to resolve; results come back in submission
    /// order.
    Submit(
        /// The grid, in submission order.
        Vec<RunSpec>,
    ),
    /// Request the server's [`ServeStats`].
    Stats,
    /// Ask the daemon to drain its queue and exit.
    Shutdown,
}

impl ClientMsg {
    /// Encodes this message as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ClientMsg::Hello { version } => {
                w.put_u8(0);
                w.put_bytes(&MAGIC);
                w.put_u16(*version);
            }
            ClientMsg::Submit(specs) => {
                w.put_u8(1);
                w.put_u64(specs.len() as u64);
                for spec in specs {
                    pack_spec(spec, &mut w);
                }
            }
            ClientMsg::Stats => w.put_u8(2),
            ClientMsg::Shutdown => w.put_u8(3),
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    /// [`ServeError::Proto`] on an unknown tag, bad magic, or a
    /// malformed body.
    pub fn decode(payload: &[u8]) -> Result<ClientMsg, ServeError> {
        let mut r = Reader::new(payload);
        let msg = match r.take_u8("client tag")? {
            0 => {
                let magic = r.take_bytes(MAGIC.len(), "hello magic")?;
                if magic != MAGIC {
                    return Err(ServeError::Proto("bad hello magic".to_string()));
                }
                ClientMsg::Hello { version: r.take_u16("hello version")? }
            }
            1 => {
                let n = r.take_u64("spec count")?;
                // Each spec is ≥ 20 bytes on the wire, so the count is
                // bounded by the (already capped) frame before any
                // allocation happens.
                if n > payload.len() as u64 {
                    return Err(ServeError::Proto(format!("absurd spec count {n}")));
                }
                let mut specs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    specs.push(unpack_spec(&mut r)?);
                }
                ClientMsg::Submit(specs)
            }
            2 => ClientMsg::Stats,
            3 => ClientMsg::Shutdown,
            other => return Err(ServeError::Proto(format!("unknown client tag {other}"))),
        };
        expect_exhausted(&r)?;
        Ok(msg)
    }
}

/// Frames the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Handshake acknowledgement carrying the server's version.
    HelloAck {
        /// The server's [`PROTO_VERSION`].
        version: u16,
    },
    /// The pending queue cannot take this grid; resubmit later. The
    /// grid was **not** partially enqueued.
    Busy {
        /// Jobs pending when the grid arrived.
        queued: u64,
        /// The configured queue depth.
        cap: u64,
    },
    /// One progress note for the job at `index` of the current grid.
    Progress {
        /// Submission index within the grid.
        index: u64,
        /// Machine-stable note: `hit`, `joined`, `queued`, or `done`.
        note: String,
    },
    /// The result image for the job at `index`. Sent in submission
    /// order after every job of the grid resolved.
    Result {
        /// Submission index within the grid.
        index: u64,
        /// The checkpoint-format result image ([`encode_result`]).
        image: Vec<u8>,
    },
    /// The grid is fully answered.
    GridDone {
        /// Number of results sent.
        total: u64,
    },
    /// Server counters, answering [`ClientMsg::Stats`] or
    /// [`ClientMsg::Shutdown`].
    Stats(
        /// The counters at the time of the request.
        ServeStats,
    ),
    /// The request could not be served; the connection is closed after
    /// this frame.
    Error(
        /// Human-readable description.
        String,
    ),
}

impl ServerMsg {
    /// Encodes this message as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ServerMsg::HelloAck { version } => {
                w.put_u8(0);
                w.put_u16(*version);
            }
            ServerMsg::Busy { queued, cap } => {
                w.put_u8(1);
                w.put_u64(*queued);
                w.put_u64(*cap);
            }
            ServerMsg::Progress { index, note } => {
                w.put_u8(2);
                w.put_u64(*index);
                w.put_str(note);
            }
            ServerMsg::Result { index, image } => {
                w.put_u8(3);
                w.put_u64(*index);
                w.put_u64(image.len() as u64);
                w.put_bytes(image);
            }
            ServerMsg::GridDone { total } => {
                w.put_u8(4);
                w.put_u64(*total);
            }
            ServerMsg::Stats(stats) => {
                w.put_u8(5);
                stats.pack(&mut w);
            }
            ServerMsg::Error(message) => {
                w.put_u8(6);
                w.put_str(message);
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    /// [`ServeError::Proto`] on an unknown tag or malformed body.
    pub fn decode(payload: &[u8]) -> Result<ServerMsg, ServeError> {
        let mut r = Reader::new(payload);
        let msg = match r.take_u8("server tag")? {
            0 => ServerMsg::HelloAck { version: r.take_u16("ack version")? },
            1 => {
                ServerMsg::Busy { queued: r.take_u64("busy queued")?, cap: r.take_u64("busy cap")? }
            }
            2 => ServerMsg::Progress {
                index: r.take_u64("progress index")?,
                note: r.take_str("progress note")?,
            },
            3 => {
                let index = r.take_u64("result index")?;
                let len = r.take_len("result image length")?;
                let image = r.take_bytes(len, "result image")?.to_vec();
                ServerMsg::Result { index, image }
            }
            4 => ServerMsg::GridDone { total: r.take_u64("grid total")? },
            5 => ServerMsg::Stats(ServeStats::unpack(&mut r)?),
            6 => ServerMsg::Error(r.take_str("error message")?),
            other => return Err(ServeError::Proto(format!("unknown server tag {other}"))),
        };
        expect_exhausted(&r)?;
        Ok(msg)
    }
}

fn expect_exhausted(r: &Reader<'_>) -> Result<(), ServeError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(ServeError::Proto(format!("{} trailing bytes after message", r.remaining())))
    }
}

// ---------------------------------------------------------------------------
// Result images
// ---------------------------------------------------------------------------

/// Layout identity of the stored result payload, carried in the image
/// header's `config_hash` slot so a schema change invalidates old cache
/// entries by key mismatch rather than misparse.
#[must_use]
pub fn result_schema() -> u64 {
    fingerprint(b"chainiq-serve result v1")
}

/// The result payload as a checkpoint section: the full [`SimStats`]
/// plus the segmented-queue stats when that design ran.
struct StoredResult {
    result: RunResult,
}

impl Snapshot for StoredResult {
    const COMPONENT: &'static str = "run-result";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut Writer) {
        self.result.stats.pack(w);
        self.result.segmented.pack(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        self.result.stats = Pack::unpack(r)?;
        self.result.segmented = Pack::unpack(r)?;
        Ok(())
    }
}

/// Encodes a run's result as a self-validating checkpoint image, keyed
/// by the spec fingerprint. Deterministic: one spec, one byte string.
#[must_use]
pub fn encode_result(key: u64, sample: u64, result: &RunResult) -> Vec<u8> {
    let mut img = ImageWriter::new(CkptHeader {
        workload_fp: key,
        config_hash: result_schema(),
        warmup: sample,
    });
    img.section(&StoredResult { result: result.clone() });
    img.finish()
}

/// Decodes and validates one [`encode_result`] image, checking it is
/// keyed for `key`/`sample` and carries the current schema.
///
/// # Errors
/// [`ServeError::Proto`] on a corrupt, truncated, or differently-keyed
/// image.
pub fn decode_result(bytes: &[u8], key: u64, sample: u64) -> Result<RunResult, ServeError> {
    let mut img = ImageReader::parse(bytes)?;
    img.expect_key(CkptHeader { workload_fp: key, config_hash: result_schema(), warmup: sample })?;
    let mut stored =
        StoredResult { result: RunResult { stats: SimStats::default(), segmented: None } };
    img.section(&mut stored)?;
    img.finish()?;
    Ok(stored.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_bench::{ideal, prescheduled, segmented};

    fn sample_specs() -> Vec<RunSpec> {
        vec![
            RunSpec::new(Bench::Swim, ideal(32), PredictorConfig::Base, 1_000),
            RunSpec::new(Bench::Gcc, segmented(512, Some(128)), PredictorConfig::Comb, 2_000),
            RunSpec::new(Bench::Twolf, prescheduled(24), PredictorConfig::Hmp, 3_000).with_seed(7),
            RunSpec::new(
                Bench::Ammp,
                IqKind::Distance(DistanceConfig::paper_sized(8)),
                PredictorConfig::Lrp,
                4_000,
            ),
        ]
    }

    #[test]
    fn specs_round_trip_canonically() {
        for spec in sample_specs() {
            let mut w = Writer::new();
            pack_spec(&spec, &mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = unpack_spec(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back, spec);
            // Canonical: re-encoding the decoded spec is byte-identical,
            // so the fingerprint is a stable content address.
            let mut w2 = Writer::new();
            pack_spec(&back, &mut w2);
            assert_eq!(w2.bytes(), bytes.as_slice());
            assert_eq!(spec_key(&back), spec_key(&spec));
        }
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let specs = sample_specs();
        let mut keys: Vec<u64> = specs.iter().map(spec_key).collect();
        let base = specs[0];
        keys.push(spec_key(&base.with_seed(base.seed + 1)));
        keys.push(spec_key(&RunSpec { sample: base.sample + 1, ..base }));
        keys.push(spec_key(&RunSpec { pred: PredictorConfig::Comb, ..base }));
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len(), "every field must feed the key");
    }

    #[test]
    fn degenerate_geometry_is_rejected_not_panicking() {
        // A zero segment count on the wire must come back as a typed
        // error; constructing the config directly would panic later.
        let spec = RunSpec::new(Bench::Swim, segmented(64, None), PredictorConfig::Base, 100);
        let mut w = Writer::new();
        pack_spec(&spec, &mut w);
        let mut bytes = w.into_bytes();
        // The segment count is the first usize after the bench name and
        // iq tag: 8 (name len) + 4 (name) + 1 (tag) = offset 13.
        for b in &mut bytes[13..21] {
            *b = 0;
        }
        let err = unpack_spec(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, ServeError::Proto(ref m) if m.contains("segment count")), "{err}");
    }

    #[test]
    fn client_messages_round_trip() {
        let msgs = vec![
            ClientMsg::Hello { version: PROTO_VERSION },
            ClientMsg::Submit(sample_specs()),
            ClientMsg::Submit(Vec::new()),
            ClientMsg::Stats,
            ClientMsg::Shutdown,
        ];
        for msg in msgs {
            let payload = msg.encode();
            assert_eq!(ClientMsg::decode(&payload).unwrap(), msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let msgs = vec![
            ServerMsg::HelloAck { version: PROTO_VERSION },
            ServerMsg::Busy { queued: 3, cap: 2 },
            ServerMsg::Progress { index: 1, note: "hit".to_string() },
            ServerMsg::Result { index: 0, image: vec![1, 2, 3] },
            ServerMsg::GridDone { total: 4 },
            ServerMsg::Stats(ServeStats { submitted: 9, hits: 5, ..ServeStats::default() }),
            ServerMsg::Error("nope".to_string()),
        ];
        for msg in msgs {
            let payload = msg.encode();
            assert_eq!(ServerMsg::decode(&payload).unwrap(), msg);
        }
    }

    #[test]
    fn bad_magic_version_tag_and_trailing_bytes_are_typed_errors() {
        let mut hello = ClientMsg::Hello { version: PROTO_VERSION }.encode();
        hello[1] = b'X';
        assert!(matches!(ClientMsg::decode(&hello), Err(ServeError::Proto(_))));
        assert!(matches!(ClientMsg::decode(&[99]), Err(ServeError::Proto(_))));
        assert!(matches!(ServerMsg::decode(&[99]), Err(ServeError::Proto(_))));
        let mut trailing = ClientMsg::Stats.encode();
        trailing.push(0);
        assert!(matches!(ClientMsg::decode(&trailing), Err(ServeError::Proto(_))));
        assert!(matches!(ClientMsg::decode(&[]), Err(ServeError::Proto(_))));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(matches!(read_frame(&mut cursor), Err(ServeError::Io(_))), "clean EOF is I/O");

        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(read_frame(&mut cursor), Err(ServeError::Proto(_))));
    }

    #[test]
    fn result_images_round_trip_and_validate_keys() {
        let spec = RunSpec::new(Bench::Swim, ideal(32), PredictorConfig::Base, 1_000);
        let result = spec.execute();
        let key = spec_key(&spec);
        let bytes = encode_result(key, spec.sample, &result);
        assert_eq!(bytes, encode_result(key, spec.sample, &result), "encoding is deterministic");
        let back = decode_result(&bytes, key, spec.sample).unwrap();
        assert_eq!(back.stats.cycles, result.stats.cycles);
        assert_eq!(back.stats.committed, result.stats.committed);
        assert_eq!(back.segmented.is_some(), result.segmented.is_some());
        // Keyed for a different spec → typed rejection.
        assert!(decode_result(&bytes, key ^ 1, spec.sample).is_err());
        assert!(decode_result(&bytes, key, spec.sample + 1).is_err());
        // Corruption → typed rejection.
        let mut evil = bytes.clone();
        evil[20] ^= 1;
        assert!(decode_result(&evil, key, spec.sample).is_err());
    }

    #[test]
    fn stats_pack_round_trips() {
        let stats = ServeStats {
            submitted: 1,
            hits: 2,
            joined: 3,
            simulated: 4,
            busy: 5,
            store_failures: 6,
            evicted: 7,
        };
        let mut w = Writer::new();
        stats.pack(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(ServeStats::unpack(&mut Reader::new(&bytes)).unwrap(), stats);
        assert!(stats.to_string().contains("2 hits"), "{stats}");
    }

    #[test]
    fn entry_names_are_stable_and_valid_cache_keys() {
        assert_eq!(entry_name(0xdead_beef), "res-00000000deadbeef.bin");
    }
}
