//! The `chainiq-serve` daemon binary.
//!
//! Binds the TCP listener, opens (or creates) the persistent result
//! cache, and serves until a client sends `Shutdown`. All defaults come
//! from the centralized `CHAINIQ_SERVE_*` knobs; flags override them:
//!
//! ```text
//! chainiq-serve [--addr HOST:PORT] [--addr-file PATH]
//!               [--cache-dir DIR] [--cache-max-mb N]
//!               [--workers N] [--queue-depth N]
//! ```
//!
//! `--addr-file` writes the *bound* address (resolving a port-0
//! request) to a file once the daemon is reachable — the hook ci.sh and
//! the tests use to rendezvous without racing on a fixed port.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

use chainiq_bench::{knob, results_dir};
use chainiq_serve::{Server, ServerConfig};

struct Args {
    addr: SocketAddr,
    addr_file: Option<PathBuf>,
    cache_dir: PathBuf,
    cache_max_mb: Option<u64>,
    workers: usize,
    queue_depth: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: chainiq-serve [--addr HOST:PORT] [--addr-file PATH] [--cache-dir DIR] \
         [--cache-max-mb N] [--workers N] [--queue-depth N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: knob::serve_addr(),
        addr_file: None,
        cache_dir: results_dir().join("serve-cache"),
        cache_max_mb: knob::ckpt_max_mb(),
        workers: chainiq_bench::jobs(),
        queue_depth: knob::serve_queue_depth(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("chainiq-serve: {flag} needs {what}");
                usage()
            }
        };
        match flag.as_str() {
            "--addr" => match value("an address").parse() {
                Ok(a) => args.addr = a,
                Err(e) => {
                    eprintln!("chainiq-serve: bad --addr: {e}");
                    usage()
                }
            },
            "--addr-file" => args.addr_file = Some(PathBuf::from(value("a path"))),
            "--cache-dir" => args.cache_dir = PathBuf::from(value("a directory")),
            "--cache-max-mb" => match value("a size").parse::<u64>() {
                Ok(0) => args.cache_max_mb = None,
                Ok(mb) => args.cache_max_mb = Some(mb),
                Err(e) => {
                    eprintln!("chainiq-serve: bad --cache-max-mb: {e}");
                    usage()
                }
            },
            "--workers" => match value("a count").parse() {
                Ok(n) if n > 0 => args.workers = n,
                _ => {
                    eprintln!("chainiq-serve: --workers needs a positive count");
                    usage()
                }
            },
            "--queue-depth" => match value("a depth").parse() {
                Ok(n) if n > 0 => args.queue_depth = n,
                _ => {
                    eprintln!("chainiq-serve: --queue-depth needs a positive depth");
                    usage()
                }
            },
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let config = ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_depth: args.queue_depth,
        cache_dir: args.cache_dir.clone(),
        cache_max_bytes: args.cache_max_mb.map(|mb| mb << 20),
        // Misses additionally share warm-started simulation prefixes
        // through the PR-6 checkpoint store when it is switched on.
        warmup_cache: knob::ckpt_enabled().then(knob::ckpt_dir),
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chainiq-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "chainiq-serve: listening on {} ({} workers, queue depth {}, cache {})",
        server.addr(),
        args.workers,
        args.queue_depth,
        args.cache_dir.display()
    );
    if let Some(path) = &args.addr_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", server.addr())) {
            eprintln!("chainiq-serve: cannot write --addr-file: {e}");
            let _ = server.stop();
            return ExitCode::FAILURE;
        }
    }
    let stats = server.join();
    eprintln!("chainiq-serve: shut down; {stats}");
    ExitCode::SUCCESS
}
