//! Client-storm benchmark: hammers a running `chainiq-serve` daemon
//! with concurrent submissions and measures jobs/sec cold (all misses)
//! versus warm (mostly cache hits), writing `BENCH_serve.json` plus one
//! appended line in `BENCH_serve_history.jsonl`.
//!
//! ```text
//! storm [--addr HOST:PORT] [--clients N] [--total N] [--distinct N]
//!       [--hit-ratio F] [--sample N] [--seed N]
//!       [--expect-warm-all-hits] [--shutdown]
//! ```
//!
//! Two phases against the same daemon:
//!
//! 1. **cold** — every spec of a `--distinct`-sized pool submitted
//!    once; all misses on a fresh cache.
//! 2. **warm** — `--total` submissions drawn from the pool with
//!    probability `--hit-ratio`, novel specs otherwise, sharded over
//!    `--clients` concurrent connections.
//!
//! The warm job stream is built up front from one seeded RNG, so it is
//! identical whatever the client count. Every response is checked into
//! a key → bytes registry: a second response for a key that differs
//! byte-for-byte — across phases, clients, or hit/miss paths — fails
//! the run. `--expect-warm-all-hits` additionally asserts the warm
//! phase simulated nothing (ci.sh runs it at `--hit-ratio 1.0`).
//! `--shutdown` just asks the daemon to exit.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use chainiq::Bench;
use chainiq_bench::knob::git_rev;
use chainiq_bench::{ideal, knob, results_dir, segmented, PredictorConfig, RunSpec, DEFAULT_SEED};
use chainiq_rng::Rng;
use chainiq_serve::{spec_key, Client, ServeStats, Submission};

struct Args {
    addr: SocketAddr,
    clients: usize,
    total: usize,
    distinct: usize,
    hit_ratio: f64,
    sample: u64,
    seed: u64,
    expect_warm_all_hits: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: storm [--addr HOST:PORT] [--clients N] [--total N] [--distinct N] \
         [--hit-ratio F] [--sample N] [--seed N] [--expect-warm-all-hits] [--shutdown]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: knob::serve_addr(),
        clients: 8,
        total: 512,
        distinct: 16,
        hit_ratio: 0.95,
        sample: 2_000,
        seed: DEFAULT_SEED,
        expect_warm_all_hits: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || match it.next() {
            Some(v) => v,
            None => {
                eprintln!("storm: {flag} needs a value");
                usage()
            }
        };
        fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
            match raw.parse() {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("storm: bad value {raw:?} for {flag}");
                    usage()
                }
            }
        }
        match flag.as_str() {
            "--addr" => args.addr = num(&flag, &value()),
            "--clients" => args.clients = num(&flag, &value()),
            "--total" => args.total = num(&flag, &value()),
            "--distinct" => args.distinct = num(&flag, &value()),
            "--hit-ratio" => args.hit_ratio = num(&flag, &value()),
            "--sample" => args.sample = num(&flag, &value()),
            "--seed" => args.seed = num(&flag, &value()),
            "--expect-warm-all-hits" => args.expect_warm_all_hits = true,
            "--shutdown" => args.shutdown = true,
            _ => usage(),
        }
    }
    if args.clients == 0 || args.distinct == 0 || !(0.0..=1.0).contains(&args.hit_ratio) {
        eprintln!("storm: --clients/--distinct must be positive, --hit-ratio within [0, 1]");
        usage()
    }
    args
}

/// The `--distinct`-sized spec pool: a spread of benchmarks, queue
/// geometries and predictors, each at its own workload seed so every
/// pool entry is a distinct cache key.
fn spec_pool(args: &Args) -> Vec<RunSpec> {
    (0..args.distinct)
        .map(|i| {
            let bench = Bench::ALL[i % Bench::ALL.len()];
            let iq = match i % 4 {
                0 => segmented(512, Some(128)),
                1 => segmented(256, Some(64)),
                2 => ideal(256),
                _ => segmented(128, None),
            };
            let pred = PredictorConfig::ALL[i % PredictorConfig::ALL.len()];
            RunSpec::new(bench, iq, pred, args.sample).with_seed(args.seed + i as u64)
        })
        .collect()
}

/// The warm-phase job stream: deterministic given the seed, whatever
/// the client count.
fn warm_jobs(args: &Args, pool: &[RunSpec]) -> Vec<RunSpec> {
    let mut rng = Rng::seed_from_u64(args.seed ^ 0x5707_3107_0770_57a7);
    (0..args.total)
        .map(|i| {
            if rng.gen_bool(args.hit_ratio) {
                pool[rng.gen_range(0..pool.len() as u64) as usize]
            } else {
                // A novel spec: a pool template at a seed no pool entry
                // (or earlier novel spec) uses.
                pool[i % pool.len()].with_seed(args.seed + 1_000_000 + i as u64)
            }
        })
        .collect()
}

/// Byte-identity registry: the first response for a key is the truth,
/// every later one must match it exactly.
struct Registry(Mutex<BTreeMap<u64, Vec<u8>>>);

impl Registry {
    fn check(&self, key: u64, image: &[u8]) -> Result<(), String> {
        let mut map = self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get(&key) {
            None => {
                map.insert(key, image.to_vec());
                Ok(())
            }
            Some(first) if first == image => Ok(()),
            Some(first) => Err(format!(
                "response for key {key:#018x} diverged: {} vs {} bytes",
                first.len(),
                image.len()
            )),
        }
    }
}

/// Submits `jobs` sharded round-robin over `clients` connections,
/// retrying whole grids on `Busy`. Returns (wall seconds, busy
/// retries) or the first identity/decode violation.
fn run_phase(
    addr: SocketAddr,
    jobs: &[RunSpec],
    clients: usize,
    registry: &Registry,
) -> Result<(f64, u64), String> {
    let busy_retries = Mutex::new(0u64);
    let t0 = Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let busy_retries = &busy_retries;
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    for spec in jobs.iter().skip(t).step_by(clients) {
                        let grid = [*spec];
                        loop {
                            match client.submit(&grid).map_err(|e| e.to_string())? {
                                Submission::Busy { .. } => {
                                    let mut n = busy_retries
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    *n += 1;
                                    drop(n);
                                    std::thread::sleep(std::time::Duration::from_millis(2));
                                }
                                Submission::Done(reply) => {
                                    registry.check(spec_key(spec), &reply.images[0])?;
                                    reply.decode(&grid).map_err(|e| e.to_string())?;
                                    break;
                                }
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }
    let retries = *busy_retries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Ok((t0.elapsed().as_secs_f64(), retries))
}

struct Point {
    name: &'static str,
    jobs: usize,
    wall_s: f64,
    busy_retries: u64,
    delta: ServeStats,
}

impl Point {
    fn jobs_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.jobs as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn delta(after: ServeStats, before: ServeStats) -> ServeStats {
    ServeStats {
        submitted: after.submitted - before.submitted,
        hits: after.hits - before.hits,
        joined: after.joined - before.joined,
        simulated: after.simulated - before.simulated,
        busy: after.busy - before.busy,
        store_failures: after.store_failures - before.store_failures,
        evicted: after.evicted - before.evicted,
    }
}

fn point_json(p: &Point) -> String {
    format!(
        "{{\"point\": \"{}\", \"jobs_per_sec\": {:.3}, \"wall_s\": {:.6}, \"jobs\": {}, \
         \"hits\": {}, \"joined\": {}, \"simulated\": {}, \"busy_retries\": {}}}",
        p.name,
        p.jobs_per_sec(),
        p.wall_s,
        p.jobs,
        p.delta.hits,
        p.delta.joined,
        p.delta.simulated,
        p.busy_retries,
    )
}

fn aggregate_json(cold: &Point, warm: &Point) -> String {
    let ratio =
        if cold.jobs_per_sec() > 0.0 { warm.jobs_per_sec() / cold.jobs_per_sec() } else { 0.0 };
    format!(
        "{{\"jobs_per_sec\": {:.3}, \"warm_over_cold\": {:.3}, \"wall_s\": {:.6}}}",
        warm.jobs_per_sec(),
        ratio,
        cold.wall_s + warm.wall_s,
    )
}

fn config_json(args: &Args) -> String {
    format!(
        "{{\"clients\": {}, \"total\": {}, \"distinct\": {}, \"hit_ratio\": {}, \"sample\": {}}}",
        args.clients, args.total, args.distinct, args.hit_ratio, args.sample
    )
}

fn json(args: &Args, points: &[Point]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"suite\": \"serve\",");
    let _ = writeln!(s, "  \"config\": {},", config_json(args));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(s, "    {}", point_json(p));
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"aggregate\": {}", aggregate_json(&points[0], &points[1]));
    s.push_str("}\n");
    s
}

/// One self-contained JSON object per line, so the history stays
/// `jsonl` and `grep`/`tail` keep working on it.
fn history_line(rev: &str, args: &Args, points: &[Point]) -> String {
    let mut s = String::from("{");
    let _ = write!(s, "\"suite\": \"serve\", \"rev\": \"{rev}\", ");
    let _ = write!(s, "\"config\": {}, ", config_json(args));
    let _ = write!(s, "\"aggregate\": {}, ", aggregate_json(&points[0], &points[1]));
    s.push_str("\"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&point_json(p));
    }
    s.push_str("]}\n");
    s
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.shutdown {
        return match Client::connect(args.addr).and_then(Client::shutdown) {
            Ok(stats) => {
                eprintln!("storm: daemon shut down; {stats}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("storm: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let pool = spec_pool(&args);
    let warm = warm_jobs(&args, &pool);
    let registry = Registry(Mutex::new(BTreeMap::new()));

    let mut stats_client = match Client::connect(args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("storm: cannot reach daemon at {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let probe = |c: &mut Client| c.stats().map_err(|e| e.to_string());

    eprintln!(
        "storm: {} distinct specs cold, then {} submissions at hit ratio {} over {} clients",
        args.distinct, args.total, args.hit_ratio, args.clients
    );

    let run = |jobs: &[RunSpec], name: &'static str, c: &mut Client| -> Result<Point, String> {
        let before = probe(c)?;
        let (wall_s, busy_retries) = run_phase(args.addr, jobs, args.clients, &registry)?;
        let after = probe(c)?;
        Ok(Point { name, jobs: jobs.len(), wall_s, busy_retries, delta: delta(after, before) })
    };

    let cold = match run(&pool, "cold", &mut stats_client) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("storm: cold phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm = match run(&warm, "warm", &mut stats_client) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("storm: warm phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for p in [&cold, &warm] {
        eprintln!(
            "  {}: {} jobs in {:.3}s = {:.1} jobs/sec ({} hits, {} joined, {} simulated, \
             {} busy retries)",
            p.name,
            p.jobs,
            p.wall_s,
            p.jobs_per_sec(),
            p.delta.hits,
            p.delta.joined,
            p.delta.simulated,
            p.busy_retries,
        );
    }
    let ratio =
        if cold.jobs_per_sec() > 0.0 { warm.jobs_per_sec() / cold.jobs_per_sec() } else { 0.0 };
    eprintln!("  warm/cold throughput ratio: {ratio:.1}x");

    if args.expect_warm_all_hits && (warm.delta.simulated > 0 || warm.delta.hits < warm.jobs as u64)
    {
        eprintln!(
            "storm: --expect-warm-all-hits violated: {} simulated, {} hits of {} jobs",
            warm.delta.simulated, warm.delta.hits, warm.jobs
        );
        return ExitCode::FAILURE;
    }
    let healthy = |rate: f64| rate.is_finite() && rate > 0.0;
    if !healthy(cold.jobs_per_sec()) || !healthy(warm.jobs_per_sec()) {
        eprintln!("storm: degenerate throughput measurement");
        return ExitCode::FAILURE;
    }

    let points = [cold, warm];
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("storm: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let snapshot = dir.join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&snapshot, json(&args, &points)) {
        eprintln!("storm: cannot write {}: {e}", snapshot.display());
        return ExitCode::FAILURE;
    }
    let history = dir.join("BENCH_serve_history.jsonl");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut f| f.write_all(history_line(&git_rev(), &args, &points).as_bytes()));
    if let Err(e) = appended {
        eprintln!("storm: cannot append {}: {e}", history.display());
        return ExitCode::FAILURE;
    }
    println!("storm: wrote {} and appended {}", snapshot.display(), history.display());
    ExitCode::SUCCESS
}
