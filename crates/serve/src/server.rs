//! The daemon: a TCP accept loop, a bounded pending queue, a fixed
//! worker pool, and the content-addressed result cache.
//!
//! # Concurrency model
//!
//! One mutex guards the whole scheduling core — the pending queue, the
//! in-flight job table, the on-disk result cache, and the counters —
//! so every submit/complete transition is atomic and the single-flight
//! guarantee needs no lock ordering argument:
//!
//! * A **submission** probes the cache and the in-flight table under
//!   the lock. A cached key is answered from the cache; an in-flight
//!   key registers the connection as a waiter on the existing job; a
//!   fresh key creates a job and enqueues it — unless the pending queue
//!   would overflow, in which case the *whole grid* is refused with a
//!   typed `Busy` before any of it is registered (no partial enqueue,
//!   no unbounded buffering).
//! * A **worker** pops the oldest pending key, simulates *outside* the
//!   lock, then re-locks to store the image and hand it to every
//!   waiter. Jobs are keyed by content, so results are byte-identical
//!   whatever the worker count or completion order.
//!
//! Simulations dominate wall-clock by orders of magnitude, so the
//! single lock is never the bottleneck; what matters is that the warm
//! path (probe + file read) never waits behind a simulation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use chainiq::ckpt::CacheDir;
use chainiq_bench::RunSpec;

use crate::proto::{
    self, entry_name, spec_key, ClientMsg, ServeError, ServeStats, ServerMsg, PROTO_VERSION,
};

/// Everything a [`Server`] needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 asks the OS for a free port (read the
    /// bound address back from [`Server::addr`]).
    pub addr: SocketAddr,
    /// Worker threads executing cache misses (clamped to ≥ 1).
    pub workers: usize,
    /// Pending-queue depth; a grid that would push the queue past this
    /// is refused with `Busy`.
    pub queue_depth: usize,
    /// Directory of the persistent result cache.
    pub cache_dir: PathBuf,
    /// Result-cache size cap in bytes (`None` = unlimited); enforced
    /// with deterministic LRU-by-key eviction on every store.
    pub cache_max_bytes: Option<u64>,
    /// Optional warmup-checkpoint cache for the simulations themselves
    /// (the PR-6 store): misses then share warm-started prefixes across
    /// specs that differ only beyond the warmup point.
    pub warmup_cache: Option<PathBuf>,
}

/// A waiter's channel paired with the grid index it wants the finished
/// image reported under.
type Waiter = (mpsc::Sender<(u64, Arc<Vec<u8>>)>, u64);

/// One in-flight simulation and the connections waiting on it.
struct Job {
    spec: RunSpec,
    waiters: Vec<Waiter>,
}

/// The mutex-guarded scheduling core.
struct Core {
    pending: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    cache: CacheDir,
    stats: ServeStats,
    shutdown: bool,
}

struct Shared {
    state: Mutex<Core>,
    work: Condvar,
    queue_depth: usize,
    warmup_cache: Option<PathBuf>,
    addr: SocketAddr,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flips the shutdown flag and wakes everyone: the workers via the
    /// condvar, the accept loop via a throwaway self-connection.
    fn begin_shutdown(&self) {
        {
            let mut core = self.lock();
            core.shutdown = true;
        }
        self.work.notify_all();
        drop(TcpStream::connect(self.addr));
    }
}

/// A running daemon; dropping the handle does **not** stop it — call
/// [`Server::stop`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns
    /// once the daemon is reachable.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the address cannot be bound or the cache
    /// directory cannot be opened.
    pub fn start(config: ServerConfig) -> Result<Server, ServeError> {
        let cache = CacheDir::open(&config.cache_dir, config.cache_max_bytes, None)
            .map_err(|e| ServeError::Proto(format!("cannot open result cache: {e}")))?;
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(Core {
                pending: VecDeque::new(),
                jobs: BTreeMap::new(),
                cache,
                stats: ServeStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            warmup_cache: config.warmup_cache,
            addr,
        });

        let mut threads = Vec::new();
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        Ok(Server { addr, shared, threads })
    }

    /// The address actually bound (resolves a port-0 request).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the daemon counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.lock().stats
    }

    /// Drains the pending queue, stops the workers and the accept loop,
    /// and returns the final counters.
    #[must_use]
    pub fn stop(self) -> ServeStats {
        self.shared.begin_shutdown();
        self.join()
    }

    /// Blocks until the daemon shuts down (via [`Server::stop`] or a
    /// client's `Shutdown` message) and returns the final counters.
    #[must_use]
    pub fn join(mut self) -> ServeStats {
        for t in self.threads.drain(..) {
            drop(t.join());
        }
        self.shared.lock().stats
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.lock().shutdown {
            return;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            // A disconnecting client mid-grid is routine, not a daemon
            // error; only protocol violations are worth a stderr line.
            if let Err(ServeError::Proto(m)) = handle_conn(&stream, &shared) {
                eprintln!("chainiq-serve: protocol error: {m}");
            }
        });
    }
}

/// Pops pending keys, simulates them, stores and publishes the images.
/// Exits once shutdown is flagged **and** the queue is drained, so a
/// shutdown never abandons a registered waiter.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (key, spec) = {
            let mut core = shared.lock();
            loop {
                if let Some(key) = core.pending.pop_front() {
                    let Some(job) = core.jobs.get(&key) else {
                        continue; // defensive: pending without a job
                    };
                    break (key, job.spec);
                }
                if core.shutdown {
                    return;
                }
                core = shared.work.wait(core).unwrap_or_else(PoisonError::into_inner);
            }
        };

        // The expensive part runs outside the lock, so submissions keep
        // resolving hits and joins while this spec simulates.
        let (result, _ckpt) = spec.execute_cached(shared.warmup_cache.as_deref());
        let image = proto::encode_result(key, spec.sample, &result);

        let mut core = shared.lock();
        core.stats.simulated += 1;
        if core.cache.store(&entry_name(key), &image).is_err() {
            core.stats.store_failures += 1;
        }
        core.stats.evicted = core.cache.tally().evicted;
        if let Some(job) = core.jobs.remove(&key) {
            let image = Arc::new(image);
            for (tx, index) in job.waiters {
                // A waiter whose connection died is simply gone; the
                // image is cached either way.
                drop(tx.send((index, Arc::clone(&image))));
            }
        }
    }
}

fn handle_conn(stream: &TcpStream, shared: &Arc<Shared>) -> Result<(), ServeError> {
    drop(stream.set_nodelay(true));
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Handshake first: anything else on a fresh connection is rejected
    // before the server reads a single spec.
    let hello = ClientMsg::decode(&proto::read_frame(&mut reader)?);
    match hello {
        Ok(ClientMsg::Hello { version }) if version == PROTO_VERSION => {
            send(&mut writer, &ServerMsg::HelloAck { version: PROTO_VERSION })?;
        }
        Ok(ClientMsg::Hello { version }) => {
            let msg = format!("protocol version {version}, this server speaks {PROTO_VERSION}");
            send(&mut writer, &ServerMsg::Error(msg.clone()))?;
            return Err(ServeError::Proto(msg));
        }
        _ => {
            let msg = "expected Hello as the first frame".to_string();
            send(&mut writer, &ServerMsg::Error(msg.clone()))?;
            return Err(ServeError::Proto(msg));
        }
    }

    loop {
        let frame = match proto::read_frame(&mut reader) {
            Ok(f) => f,
            Err(ServeError::Io(_)) => return Ok(()), // client hung up
            Err(e) => return Err(e),
        };
        match ClientMsg::decode(&frame) {
            Ok(ClientMsg::Submit(specs)) => handle_submit(&specs, shared, &mut writer)?,
            Ok(ClientMsg::Stats) => {
                let stats = shared.lock().stats;
                send(&mut writer, &ServerMsg::Stats(stats))?;
            }
            Ok(ClientMsg::Shutdown) => {
                // Reply (flushed) *before* flipping the flag: once the
                // accept and worker threads drain, the process exits,
                // and this detached connection thread must not race its
                // own goodbye onto a dead socket.
                let stats = shared.lock().stats;
                send(&mut writer, &ServerMsg::Stats(stats))?;
                shared.begin_shutdown();
                return Ok(());
            }
            Ok(ClientMsg::Hello { .. }) => {
                let msg = "unexpected second Hello".to_string();
                send(&mut writer, &ServerMsg::Error(msg.clone()))?;
                return Err(ServeError::Proto(msg));
            }
            Err(e) => {
                send(&mut writer, &ServerMsg::Error(e.to_string()))?;
                return Err(e);
            }
        }
    }
}

/// Resolves one grid: progress notes up front, streamed `done` notes as
/// misses complete, then the result images strictly in submission
/// order, then `GridDone`.
fn handle_submit(
    specs: &[RunSpec],
    shared: &Arc<Shared>,
    writer: &mut impl Write,
) -> Result<(), ServeError> {
    let keys: Vec<u64> = specs.iter().map(spec_key).collect();
    let (tx, rx) = mpsc::channel::<(u64, Arc<Vec<u8>>)>();
    let mut images: Vec<Option<Arc<Vec<u8>>>> = vec![None; specs.len()];
    let mut notes: Vec<&'static str> = Vec::with_capacity(specs.len());

    {
        let mut core = shared.lock();

        // Classify every distinct key before touching anything, so a
        // Busy refusal leaves no trace of the grid behind.
        let mut cached: BTreeMap<u64, Arc<Vec<u8>>> = BTreeMap::new();
        let mut fresh: BTreeSet<u64> = BTreeSet::new();
        for &key in &keys {
            if cached.contains_key(&key) || fresh.contains(&key) || core.jobs.contains_key(&key) {
                continue;
            }
            match core.cache.load(&entry_name(key)) {
                Ok(Some(bytes)) => {
                    cached.insert(key, Arc::new(bytes));
                }
                // Unreadable entries fall through to re-simulation; the
                // cache is an accelerator, never a correctness input.
                Ok(None) | Err(_) => {
                    fresh.insert(key);
                }
            }
        }
        if core.pending.len() + fresh.len() > shared.queue_depth {
            let busy = ServerMsg::Busy {
                queued: core.pending.len() as u64,
                cap: shared.queue_depth as u64,
            };
            core.stats.busy += 1;
            drop(core);
            return send(writer, &busy);
        }

        core.stats.submitted += specs.len() as u64;
        for (i, (spec, &key)) in specs.iter().zip(&keys).enumerate() {
            if let Some(image) = cached.get(&key) {
                core.stats.hits += 1;
                images[i] = Some(Arc::clone(image));
                notes.push("hit");
            } else if let Some(job) = core.jobs.get_mut(&key) {
                job.waiters.push((tx.clone(), i as u64));
                core.stats.joined += 1;
                notes.push("joined");
            } else {
                core.jobs.insert(key, Job { spec: *spec, waiters: vec![(tx.clone(), i as u64)] });
                core.pending.push_back(key);
                notes.push("queued");
            }
        }
    }
    shared.work.notify_all();
    drop(tx); // rx must drain exactly the registered waiters

    for (i, note) in notes.iter().enumerate() {
        send(writer, &ServerMsg::Progress { index: i as u64, note: (*note).to_string() })?;
    }

    let outstanding = images.iter().filter(|i| i.is_none()).count();
    for _ in 0..outstanding {
        let Ok((index, image)) = rx.recv() else {
            let msg = "worker pool shut down mid-grid".to_string();
            send(writer, &ServerMsg::Error(msg.clone()))?;
            return Err(ServeError::Proto(msg));
        };
        send(writer, &ServerMsg::Progress { index, note: "done".to_string() })?;
        if let Some(slot) = images.get_mut(index as usize) {
            *slot = Some(image);
        }
    }

    for (i, image) in images.iter().enumerate() {
        let Some(image) = image else {
            let msg = format!("job {i} resolved without an image");
            send(writer, &ServerMsg::Error(msg.clone()))?;
            return Err(ServeError::Proto(msg));
        };
        send(writer, &ServerMsg::Result { index: i as u64, image: image.to_vec() })?;
    }
    send(writer, &ServerMsg::GridDone { total: specs.len() as u64 })
}

fn send(writer: &mut impl Write, msg: &ServerMsg) -> Result<(), ServeError> {
    proto::write_frame(writer, &msg.encode())
}
