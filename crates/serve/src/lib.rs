//! `chainiq-serve` — a long-running simulation daemon in front of the
//! chainiq experiment harness.
//!
//! Every experiment binary re-executes its grid from scratch; across a
//! working session (sweep, tweak, re-sweep) the same `RunSpec`s are
//! simulated over and over. This crate moves the execute-and-cache loop
//! behind a TCP daemon so that *any number of clients* share one
//! content-addressed result store:
//!
//! * **Protocol** ([`proto`]) — a versioned, length-prefixed wire
//!   format. Clients submit grids of [`RunSpec`]s; the server answers
//!   with per-job progress, result images in submission order, or a
//!   typed [`proto::ServerMsg::Busy`] when the pending queue is full.
//! * **Server** ([`server`]) — accepts connections, answers from the
//!   result cache (a `chainiq_ckpt::CacheDir`, persisted on disk in the
//!   checkpoint-image format), collapses concurrent identical
//!   submissions onto one in-flight simulation (single-flight dedupe),
//!   and shards misses across a fixed worker pool.
//! * **Client** ([`client`]) — the blocking client the `storm`
//!   benchmark and the integration tests drive.
//!
//! Responses are **byte-identical** for a given spec regardless of
//! arrival order, worker count, or whether the bytes came from the
//! cache or a fresh simulation: the image is a deterministic encoding
//! of a deterministic simulation, and the cache key is a fingerprint of
//! the spec's canonical wire encoding.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use chainiq_bench::RunSpec;
pub use client::{Client, GridReply, Submission};
pub use proto::{spec_key, ServeError, ServeStats, PROTO_VERSION};
pub use server::{Server, ServerConfig};
