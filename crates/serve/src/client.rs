//! The blocking client: handshake, grid submission, stats, shutdown.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

use chainiq::RunResult;
use chainiq_bench::RunSpec;

use crate::proto::{
    self, decode_result, spec_key, ClientMsg, ServeError, ServeStats, ServerMsg, PROTO_VERSION,
};

/// A connected, handshaken client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// How the server answered a grid submission.
#[derive(Debug)]
pub enum Submission {
    /// The pending queue was full; nothing was enqueued. Resubmit the
    /// whole grid later.
    Busy {
        /// Jobs pending when the grid arrived.
        queued: u64,
        /// The configured queue depth.
        cap: u64,
    },
    /// Every job resolved.
    Done(GridReply),
}

/// A fully resolved grid.
#[derive(Debug)]
pub struct GridReply {
    /// Result images, in submission order — byte-identical for a given
    /// spec whatever the arrival order, worker count, or hit/miss path.
    pub images: Vec<Vec<u8>>,
    /// The progress stream, in arrival order: `(index, note)` with
    /// notes `hit`/`joined`/`queued`/`done`.
    pub notes: Vec<(u64, String)>,
}

impl GridReply {
    /// Decodes and validates every image against the specs that were
    /// submitted.
    ///
    /// # Errors
    /// [`ServeError::Proto`] if any image is corrupt or keyed for a
    /// different spec.
    pub fn decode(&self, specs: &[RunSpec]) -> Result<Vec<RunResult>, ServeError> {
        if specs.len() != self.images.len() {
            return Err(ServeError::Proto(format!(
                "{} images for {} specs",
                self.images.len(),
                specs.len()
            )));
        }
        specs
            .iter()
            .zip(&self.images)
            .map(|(spec, image)| decode_result(image, spec_key(spec), spec.sample))
            .collect()
    }
}

impl Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    /// [`ServeError::Io`] on connection failure, [`ServeError::Remote`]
    /// if the server refuses the handshake, [`ServeError::Proto`] on a
    /// version mismatch.
    pub fn connect(addr: SocketAddr) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        drop(stream.set_nodelay(true));
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client { reader, writer };
        client.send(&ClientMsg::Hello { version: PROTO_VERSION })?;
        match client.recv()? {
            ServerMsg::HelloAck { version } if version == PROTO_VERSION => Ok(client),
            ServerMsg::HelloAck { version } => Err(ServeError::Proto(format!(
                "server speaks protocol {version}, this client speaks {PROTO_VERSION}"
            ))),
            ServerMsg::Error(m) => Err(ServeError::Remote(m)),
            other => Err(ServeError::Proto(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Submits a grid and blocks until it is refused (`Busy`) or fully
    /// resolved.
    ///
    /// # Errors
    /// [`ServeError::Remote`] if the server reports an error,
    /// [`ServeError::Proto`]/[`ServeError::Io`] on wire trouble.
    pub fn submit(&mut self, specs: &[RunSpec]) -> Result<Submission, ServeError> {
        self.send(&ClientMsg::Submit(specs.to_vec()))?;
        let mut images: Vec<Option<Vec<u8>>> = vec![None; specs.len()];
        let mut notes = Vec::new();
        loop {
            match self.recv()? {
                ServerMsg::Busy { queued, cap } => return Ok(Submission::Busy { queued, cap }),
                ServerMsg::Progress { index, note } => notes.push((index, note)),
                ServerMsg::Result { index, image } => {
                    let slot = images.get_mut(index as usize).ok_or_else(|| {
                        ServeError::Proto(format!("result index {index} out of range"))
                    })?;
                    *slot = Some(image);
                }
                ServerMsg::GridDone { total } => {
                    if total as usize != specs.len() {
                        return Err(ServeError::Proto(format!(
                            "grid of {} answered with {total} results",
                            specs.len()
                        )));
                    }
                    let images = images
                        .into_iter()
                        .enumerate()
                        .map(|(i, img)| {
                            img.ok_or_else(|| ServeError::Proto(format!("no result for job {i}")))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(Submission::Done(GridReply { images, notes }));
                }
                ServerMsg::Error(m) => return Err(ServeError::Remote(m)),
                other => {
                    return Err(ServeError::Proto(format!("unexpected reply: {other:?}")));
                }
            }
        }
    }

    /// Fetches the daemon counters.
    ///
    /// # Errors
    /// [`ServeError::Remote`] or wire errors, as for [`Client::submit`].
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        self.send(&ClientMsg::Stats)?;
        match self.recv()? {
            ServerMsg::Stats(stats) => Ok(stats),
            ServerMsg::Error(m) => Err(ServeError::Remote(m)),
            other => Err(ServeError::Proto(format!("unexpected stats reply: {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit; returns its final counters.
    ///
    /// # Errors
    /// [`ServeError::Remote`] or wire errors, as for [`Client::submit`].
    pub fn shutdown(mut self) -> Result<ServeStats, ServeError> {
        self.send(&ClientMsg::Shutdown)?;
        match self.recv()? {
            ServerMsg::Stats(stats) => Ok(stats),
            ServerMsg::Error(m) => Err(ServeError::Remote(m)),
            other => Err(ServeError::Proto(format!("unexpected shutdown reply: {other:?}"))),
        }
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ServeError> {
        proto::write_frame(&mut self.writer, &msg.encode())
    }

    fn recv(&mut self) -> Result<ServerMsg, ServeError> {
        ServerMsg::decode(&proto::read_frame(&mut self.reader)?)
    }
}
