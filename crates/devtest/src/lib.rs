//! A seeded property-test harness with no external dependencies.
//!
//! This is the in-repo replacement for `proptest`: each property is a
//! closure over a [`Gen`] that draws its random inputs; the harness runs
//! it for N deterministically-seeded cases, and on failure it
//!
//! 1. **shrinks** by re-running the failing seed with every ranged
//!    integer draw's width halved (then quartered, and so on) — the
//!    simple "halving" shrink: smaller programs, smaller indices,
//!    shorter vectors, same seed;
//! 2. reports the **reproducing seed** (and shrink level) plus the
//!    environment variables that re-run exactly that case.
//!
//! Environment knobs:
//!
//! * `CHAINIQ_PROP_CASES=n` — override every suite's case count (CI can
//!   turn it up; a quick local run can turn it down).
//! * `CHAINIQ_PROP_SEED=0x…` — run only the given case seed.
//! * `CHAINIQ_PROP_SHRINK=k` — with `CHAINIQ_PROP_SEED`, replay at
//!   shrink level `k` (ranged draws use `width >> k`).
//!
//! Properties are declared with [`prop_check!`]; the underlying runner
//! is also callable directly:
//!
//! ```
//! use chainiq_devtest::run_prop;
//!
//! // Addition of draws never exceeds the sum of the range maxima.
//! run_prop("sum_bounded", 32, |g| {
//!     let a = g.u64(0..100);
//!     let b = g.u64(0..50);
//!     chainiq_devtest::prop_assert!(a + b < 150, "{a} + {b} out of bounds");
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::ops::Range;

use chainiq_rng::{splitmix64, Rng};

/// Default number of cases per property when the test doesn't say.
pub const DEFAULT_CASES: u64 = 256;

/// Deepest shrink level attempted. `width >> 40` pins every realistic
/// range to its minimum (ranged draws in this workspace are far below
/// 2^40 wide), so deeper levels would change nothing.
const MAX_SHRINK: u32 = 40;

/// The input source handed to each property: a seeded PRNG plus the
/// current shrink level.
///
/// Ranged draws (`u64`, `usize`, `u8`, `f64`, `vec` lengths) shrink:
/// at shrink level `k` a range's width is cut to `max(1, width >> k)`,
/// biasing every input toward its minimum while replaying the same
/// random stream. Unranged draws (`any_u64`, `bool`) don't shrink —
/// they are seeds and coin flips, where "smaller" has no meaning.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: Rng,
    shrink: u32,
}

impl Gen {
    /// Creates a source for `seed` at the given shrink level (0 = full
    /// ranges). Tests normally never construct this — the harness does.
    #[must_use]
    pub fn new(seed: u64, shrink: u32) -> Self {
        Gen { rng: Rng::seed_from_u64(seed), shrink }
    }

    fn shrunk_width(&self, width: u64) -> u64 {
        (width >> self.shrink).max(1)
    }

    /// A uniform `u64` in `range`, shrink-scaled toward `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "Gen::u64: empty range");
        let width = self.shrunk_width(range.end - range.start);
        self.rng.gen_range(range.start..range.start + width)
    }

    /// A uniform `usize` in `range`, shrink-scaled.
    #[must_use]
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `u32` in `range`, shrink-scaled.
    #[must_use]
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// A uniform `u8` in `range`, shrink-scaled.
    #[must_use]
    pub fn u8(&mut self, range: Range<u8>) -> u8 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u8
    }

    /// A full-range `u64` (for seeds). Not shrink-scaled.
    #[must_use]
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A fair coin. Not shrink-scaled.
    #[must_use]
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// A uniform `f64` in `range`, shrink-scaled toward `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if `range.start > range.end`.
    #[must_use]
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start <= range.end, "Gen::f64: inverted range");
        let scale = 1.0 / f64::from(1u32 << self.shrink.min(30));
        range.start + (range.end - range.start) * scale * self.rng.next_f64()
    }

    /// `Some(f(self))` half the time, `None` the other half (the
    /// `prop::option::of` equivalent).
    #[must_use]
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// A vector with a shrink-scaled length drawn from `len`, each
    /// element produced by `f`.
    #[must_use]
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// An index in `0..n`, for one-of choices over `n` alternatives.
    /// Not shrink-scaled: shrinking must not change *which* variant a
    /// case exercises, only how big its parameters are.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "Gen::pick: no alternatives");
        self.rng.gen_range(0..n as u64) as usize
    }
}

/// Outcome of one property case, as produced by the `prop_assert!`
/// family: `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

fn env_u64(name: &str) -> Option<u64> {
    // chainiq-analyze: allow(D3, CHAINIQ_PROP_* replay knobs are devtest's own debugging interface, not experiment inputs)
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{name}={v} is not a decimal or 0x-hex integer"),
    }
}

/// Runs `cases` seeded cases of `property`, shrinking and reporting the
/// first failure. Tests normally invoke this through [`prop_check!`].
///
/// # Panics
///
/// Panics (failing the test) when a case fails, with the reproducing
/// seed, shrink level, and failure message.
pub fn run_prop(name: &str, cases: u64, property: impl Fn(&mut Gen) -> CaseResult) {
    // Reproduction mode: exactly one seed, no shrinking beyond the
    // requested level.
    if let Some(seed) = env_u64("CHAINIQ_PROP_SEED") {
        let shrink = env_u64("CHAINIQ_PROP_SHRINK").unwrap_or(0) as u32;
        if let Err(msg) = property(&mut Gen::new(seed, shrink)) {
            panic!(
                "property '{name}' failed replaying seed 0x{seed:016X} (shrink level {shrink})\n  \
                 error: {msg}"
            );
        }
        return;
    }

    let cases = env_u64("CHAINIQ_PROP_CASES").unwrap_or(cases);
    // Case seeds are a SplitMix64 stream keyed on the property name, so
    // every property explores a different region of seed space and a
    // case index always maps to the same seed.
    let mut key = name.bytes().fold(0u64, |h, b| h.wrapping_mul(0x100).wrapping_add(u64::from(b)));
    for case in 0..cases {
        let seed = splitmix64(&mut key);
        let Err(msg) = property(&mut Gen::new(seed, 0)) else { continue };

        // Halving shrink: replay the same seed with ever-narrower
        // integer ranges; keep the deepest level that still fails.
        let mut best = (0u32, msg);
        for level in 1..=MAX_SHRINK {
            if let Err(m) = property(&mut Gen::new(seed, level)) {
                best = (level, m);
            }
        }
        let (level, msg) = best;
        let mut report = String::new();
        let _ = writeln!(report, "property '{name}' failed (case {}/{cases})", case + 1);
        let _ = writeln!(report, "  seed: 0x{seed:016X}, minimal shrink level: {level}");
        let _ = writeln!(report, "  error: {msg}");
        let _ = write!(
            report,
            "  reproduce: CHAINIQ_PROP_SEED=0x{seed:016X} CHAINIQ_PROP_SHRINK={level} \
             cargo test -q {name}"
        );
        panic!("{report}");
    }
}

/// Declares seeded property tests.
///
/// Each item becomes a normal `#[test]` whose body runs under
/// [`run_prop`]. The body draws inputs from the `Gen` binding named in
/// the signature and asserts with [`prop_assert!`] /
/// [`prop_assert_eq!`] / [`prop_assert_ne!`]. An optional
/// `cases = N` after the binding sets the case count (default
/// [`DEFAULT_CASES`]).
#[macro_export]
macro_rules! prop_check {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($g:ident, cases = $cases:expr) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::run_prop(
                stringify!($name),
                $cases,
                |$g: &mut $crate::Gen| -> $crate::CaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::prop_check!($($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($g:ident) $body:block
        $($rest:tt)*
    ) => {
        $crate::prop_check! {
            $(#[$meta])*
            fn $name($g, cases = $crate::DEFAULT_CASES) $body
            $($rest)*
        }
    };
}

/// Asserts a condition inside a [`prop_check!`] body; on failure the
/// case returns an error carrying the condition (or the given format
/// message) so the harness can shrink and report it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion for [`prop_check!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n    left: {l:?}\n   right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "{}\n    left: {l:?}\n   right: {r:?}",
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assertion for [`prop_check!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n    both: {l:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "{}\n    both: {l:?}",
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = Gen::new(42, 0);
        let mut b = Gen::new(42, 0);
        for _ in 0..100 {
            assert_eq!(a.u64(0..1000), b.u64(0..1000));
            assert_eq!(a.bool(), b.bool());
        }
    }

    #[test]
    fn ranged_draws_respect_bounds() {
        let mut g = Gen::new(7, 0);
        for _ in 0..1000 {
            assert!((3..17).contains(&g.u64(3..17)));
            assert!((1..5).contains(&g.usize(1..5)));
            let f = g.f64(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shrink_halves_toward_the_minimum() {
        // At level 4 a width-160 range narrows to width 10.
        let mut g = Gen::new(1, 4);
        for _ in 0..1000 {
            assert!(g.u64(100..260) < 110);
        }
        // Deep levels pin ranges (and vec lengths) at their minimum.
        let mut g = Gen::new(1, MAX_SHRINK);
        assert_eq!(g.u64(5..1_000_000), 5);
        let v = g.vec(2..50, |g| g.u64(0..100));
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|&x| x == 0));
    }

    #[test]
    fn pick_is_not_shrunk() {
        let mut full = Gen::new(3, 0);
        let mut deep = Gen::new(3, MAX_SHRINK);
        for _ in 0..100 {
            assert_eq!(full.pick(6), deep.pick(6), "shrinking must not change variant choice");
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut g = Gen::new(5, 0);
        for _ in 0..200 {
            let v = g.vec(1..9, |g| g.u8(0..10));
            assert!((1..9).contains(&v.len()));
        }
    }

    #[test]
    fn passing_property_runs_every_case() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        run_prop("counts_cases", 37, |g| {
            RUNS.fetch_add(1, Ordering::Relaxed);
            let _ = g.u64(0..10);
            Ok(())
        });
        assert_eq!(RUNS.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("always_fails", 8, |g| {
                let n = g.u64(10..1_000_000);
                Err(format!("boom at {n}"))
            });
        }));
        let msg = *result.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("property 'always_fails' failed"), "{msg}");
        assert!(msg.contains("seed: 0x"), "{msg}");
        assert!(msg.contains("CHAINIQ_PROP_SEED=0x"), "{msg}");
        // The deepest shrink level pins the draw at the range minimum,
        // so the reported (shrunk) failure is the minimal one.
        assert!(msg.contains("minimal shrink level: 40"), "{msg}");
        assert!(msg.contains("boom at 10"), "{msg}");
    }

    #[test]
    fn shrink_keeps_the_deepest_still_failing_level() {
        // Fails only while the drawn value stays large: shrinking past
        // the failure threshold makes the case pass, so the harness must
        // keep the deepest level that still fails, not the deepest tried.
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_prop("fails_when_large", 8, |g| {
                let n = g.u64(0..1 << 20);
                if n >= 1 << 10 {
                    Err(format!("too big: {n}"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = *result.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("too big"), "{msg}");
        assert!(!msg.contains("minimal shrink level: 40"), "{msg}");
    }

    prop_check! {
        /// The macro itself: default case count, assertions, drawing.
        fn macro_smoke(g) {
            let a = g.u64(0..100);
            let b = a + 1;
            prop_assert!(b > a);
            prop_assert_eq!(a + 1, b);
            prop_assert_ne!(a, b, "a={a} must differ from b={b}");
        }

        /// Explicit case count variant compiles and runs.
        fn macro_with_cases(g, cases = 3) {
            prop_assert!(g.f64(0.0..1.0) < 1.0);
        }
    }
}
