//! The sweep executor's core guarantee: parallelism changes wall-clock,
//! never numbers. A small grid run serially and on four workers must
//! produce identical `RunResult`s at every submission index.

use chainiq::Bench;
use chainiq_bench::{ideal, segmented, PredictorConfig, RunSpec, Sweep};

const SAMPLE: u64 = 2_000;

fn grid() -> Sweep {
    // 2 benches × 2 configs: one ideal queue and one segmented queue
    // (the design with the most internal state to diverge).
    let mut sweep = Sweep::new();
    for bench in [Bench::Swim, Bench::Gcc] {
        sweep.add(bench, ideal(64), PredictorConfig::Base, SAMPLE);
        sweep.add(bench, segmented(64, Some(64)), PredictorConfig::Comb, SAMPLE);
    }
    sweep
}

/// Every counter a run reports, as one comparable string. `SimStats`
/// and `SegmentedStats` derive `Debug` over all fields (IPC, committed
/// counts, predictor/memory/queue stat counters), so the Debug
/// rendering is an exhaustive fingerprint.
fn fingerprints(results: &[chainiq::RunResult]) -> Vec<String> {
    results.iter().map(|r| format!("{:.12} {:?} {:?}", r.ipc(), r.stats, r.segmented)).collect()
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    let serial = grid().run_with_jobs(1);
    let parallel = grid().run_with_jobs(4);
    assert_eq!(serial.len(), parallel.len());
    let (s, p) = (fingerprints(&serial), fingerprints(&parallel));
    for (i, (a, b)) in s.iter().zip(&p).enumerate() {
        assert_eq!(a, b, "spec {i} diverged between 1 and 4 workers");
    }
}

#[test]
fn sweep_matches_direct_execution() {
    // The pool must run exactly the spec it was handed: results at index
    // i equal a plain serial `RunSpec::execute` of spec i.
    let sweep = grid();
    let specs: Vec<RunSpec> = sweep.specs().to_vec();
    let pooled = sweep.run_with_jobs(4);
    for (i, spec) in specs.iter().enumerate() {
        let direct = spec.execute();
        assert_eq!(
            fingerprints(&[direct]),
            fingerprints(&[pooled[i].clone()]),
            "spec {i} ({}) diverged from direct execution",
            spec.label()
        );
    }
}
