//! The paper's combined claim, quantified: IPC (from simulation) times
//! achievable clock (from the Palacharla-style circuit model) — turning
//! Figure 3's equal-clock IPC curves into a throughput comparison.
//!
//! §6.3: "since the cycle time of our segmented IQ design is determined
//! by the complexity of the individual 32-entry segments, we expect
//! cycle times to be fairly constant across the range of sizes. In
//! contrast, the cycle time of the ideal queue would be expected to grow
//! quadratically with its size."

use chainiq::{Bench, QueueGeometry, Technology};
use chainiq_bench::{ideal, sample_size, segmented, PredictorConfig, Sweep, TextTable};

const SIZES: [usize; 5] = [32, 64, 128, 256, 512];

fn main() {
    let sample = sample_size();
    let tech = Technology::default();
    println!("Clock-adjusted throughput (IPC x scheduler-limited clock)");
    println!("({sample} committed instructions per run; synthetic technology — ");
    println!(" relative numbers meaningful, absolute GHz not)\n");

    println!("scheduler-limited clocks:");
    for size in SIZES {
        println!(
            "  monolithic {size:>3}-entry: {:5.2} GHz    segmented {size:>3} (32-entry segments): {:5.2} GHz",
            tech.clock_ghz(QueueGeometry::monolithic(size, 8)),
            tech.clock_ghz(QueueGeometry::segmented(size, 32, 8)),
        );
    }
    println!();

    let benches =
        [Bench::Swim, Bench::Mgrid, Bench::Equake, Bench::Applu, Bench::Vortex, Bench::Gcc];

    // Three runs per benchmark (mono-32, mono-512, seg-512), row-major.
    let mut sweep = Sweep::new();
    for bench in benches {
        sweep.add(bench, ideal(32), PredictorConfig::Base, sample);
        sweep.add(bench, ideal(512), PredictorConfig::Base, sample);
        sweep.add(bench, segmented(512, Some(128)), PredictorConfig::Comb, sample);
    }
    let results = sweep.run();

    let mut t = TextTable::new(&[
        "bench",
        "mono-32 BIPS",
        "mono-512 BIPS",
        "seg-512 BIPS",
        "seg-512/best-mono",
    ]);
    let mut wins = 0usize;
    for (bi, bench) in benches.iter().enumerate() {
        let mono32 = &results[bi * 3];
        let mono512 = &results[bi * 3 + 1];
        let seg512 = &results[bi * 3 + 2];

        let b32 = tech.bips(QueueGeometry::monolithic(32, 8), mono32.ipc());
        let b512 = tech.bips(QueueGeometry::monolithic(512, 8), mono512.ipc());
        let bseg = tech.bips(QueueGeometry::segmented(512, 32, 8), seg512.ipc());
        let best_mono = b32.max(b512);
        if bseg > best_mono {
            wins += 1;
        }
        t.row(&[
            bench.name().to_string(),
            format!("{b32:.2}"),
            format!("{b512:.2}"),
            format!("{bseg:.2}"),
            format!("{:.2}x", bseg / best_mono),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the segmented design beats the best monolithic option on {wins}/6 benchmarks:\n\
         a big window *and* a small queue's clock — the paper's thesis in one number."
    );
}
