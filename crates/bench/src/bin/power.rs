//! §7's power question, quantified: dynamic energy per instruction for
//! the segmented queue vs the monolithic queue, with the breakdown that
//! shows where each design spends.
//!
//! "Copying an instruction from segment to segment consumes more dynamic
//! power than keeping the instruction in a single storage location ...
//! In any case, the segmented structure lends itself naturally to
//! dynamic resizing by gating clocks and/or power on a segment
//! granularity."

use chainiq::{Bench, EnergyModel};
use chainiq_bench::{ideal, sample_size, segmented, PredictorConfig, Sweep, TextTable};

fn main() {
    let sample = sample_size();
    let model = EnergyModel::default();
    println!("Dynamic energy per committed instruction (synthetic pJ; ratios meaningful)");
    println!("512-entry queues, {sample} committed instructions per run\n");

    let benches = [Bench::Swim, Bench::Mgrid, Bench::Equake, Bench::Gcc, Bench::Vortex];

    // Two runs per benchmark (monolithic, segmented), row-major.
    let mut sweep = Sweep::new();
    for bench in benches {
        sweep.add(bench, ideal(512), PredictorConfig::Base, sample);
        sweep.add(bench, segmented(512, Some(128)), PredictorConfig::Comb, sample);
    }
    let results = sweep.run();

    let mut t = TextTable::new(&[
        "bench",
        "mono pJ/inst",
        "seg pJ/inst",
        "ratio",
        "seg copies %",
        "mono CAM %",
        "gateable",
    ]);
    for (bi, bench) in benches.iter().enumerate() {
        let mono = &results[bi * 2];
        let seg = &results[bi * 2 + 1];
        let segstats = seg.segmented.as_ref().expect("segmented stats");

        let e_mono = model.monolithic_energy_from_stats(512, &mono.stats.iq);
        let e_seg = model.segmented_energy(segstats);
        let mono_pi = e_mono.per_instruction_pj(mono.stats.committed);
        let seg_pi = e_seg.per_instruction_pj(seg.stats.committed);

        t.row(&[
            bench.name().to_string(),
            format!("{mono_pi:.1}"),
            format!("{seg_pi:.1}"),
            format!("{:.2}x", seg_pi / mono_pi),
            format!("{:.0}%", 100.0 * e_seg.copies_pj / e_seg.total_pj()),
            format!("{:.0}%", 100.0 * e_mono.cam_pj / e_mono.total_pj()),
            format!("{:.0}%", 100.0 * segstats.gateable_segment_frac()),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: the segmented design pays for copies (the §7 concern) but");
    println!("escapes the monolithic queue's full-occupancy CAM search; 'gateable'");
    println!("is the fraction of segment-cycles that sat empty — the clock-gating");
    println!("opportunity §7 points out.");
}
