//! §7's SMT hypothesis, tested: "the dynamic inter-chain scheduling of
//! our segmented IQ should allow chains from independent threads to
//! exploit thread-level parallelism effectively."
//!
//! Runs 1, 2 and 4 hardware threads over a shared 512-entry queue —
//! ideal vs segmented — and reports aggregate IPC. If the hypothesis
//! holds, the segmented queue's retention (segmented/ideal) does not
//! collapse as threads are added.

use chainiq::core::{SegmentedIq, SegmentedIqConfig};
use chainiq::{AddressSpace, Bench, IdealIq, SimConfig, SimStats, SmtPipeline, SyntheticWorkload};
use chainiq_bench::{sample_size, sweep_map, TextTable, DEFAULT_SEED};

// Not a multiple of any predictor-table size, so thread contexts do not
// alias exactly onto the same PHT/BTB/HMP slots.
const STRIDE: u64 = (1 << 40) | 0x94_530;

fn threads(mix: &[Bench]) -> Vec<AddressSpace<SyntheticWorkload>> {
    mix.iter()
        .enumerate()
        .map(|(t, b)| {
            AddressSpace::new(
                SyntheticWorkload::from_profile(b.profile(), DEFAULT_SEED + t as u64),
                t as u64 * STRIDE,
                t as u64 * STRIDE,
            )
        })
        .collect()
}

fn run_ideal(mix: &[Bench], insts: u64) -> SimStats {
    let cfg = SimConfig::default().rob_for_iq(512);
    let mut smt = SmtPipeline::new(cfg, IdealIq::new(512), threads(mix));
    smt.run(insts)
}

fn run_segmented(mix: &[Bench], insts: u64) -> (SimStats, f64) {
    let mut cfg = SimConfig::default().rob_for_iq(512).with_extra_dispatch_cycle();
    cfg.use_hmp = true;
    cfg.use_lrp = true;
    let mut qc = SegmentedIqConfig::paper(512, Some(128));
    qc.two_chain_tracking = false;
    let mut smt = SmtPipeline::new(cfg, SegmentedIq::new(qc), threads(mix));
    let s = smt.run(insts);
    (s, smt.iq().full_stats().chains.mean_live())
}

fn main() {
    let sample = sample_size();
    println!("SMT over a shared 512-entry queue (aggregate IPC across threads)");
    println!("({sample} committed instructions per run; comb predictors, 128 chains)\n");

    let mixes: Vec<(&str, Vec<Bench>)> = vec![
        ("gcc x1", vec![Bench::Gcc]),
        ("gcc x2", vec![Bench::Gcc; 2]),
        ("gcc x4", vec![Bench::Gcc; 4]),
        ("ammp x1", vec![Bench::Ammp]),
        ("ammp x2", vec![Bench::Ammp; 2]),
        ("ammp x4", vec![Bench::Ammp; 4]),
        ("swim+gcc", vec![Bench::Swim, Bench::Gcc]),
        ("mgrid+twolf", vec![Bench::Mgrid, Bench::Twolf]),
        ("swim+mgrid+gcc+twolf", vec![Bench::Swim, Bench::Mgrid, Bench::Gcc, Bench::Twolf]),
    ];

    // SMT runs are not plain `RunSpec`s (each point is a thread mix over
    // a custom pipeline), so fan them out with the generic sweep_map:
    // one job per mix, each running its ideal + segmented pair.
    let rows = sweep_map("smt mix", &mixes, |(_, mix)| {
        let ideal = run_ideal(mix, sample);
        let (seg, chains) = run_segmented(mix, sample);
        (ideal, seg, chains)
    });

    let mut t = TextTable::new(&["mix", "ideal IPC", "seg IPC", "retention", "mean chains"]);
    for ((label, _), (ideal, seg, chains)) in mixes.iter().zip(&rows) {
        t.row(&[
            (*label).to_string(),
            format!("{:.3}", ideal.ipc()),
            format!("{:.3}", seg.ipc()),
            format!("{:.0}%", 100.0 * seg.ipc() / ideal.ipc()),
            format!("{chains:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: 'retention' holding steady as threads are added is the §7");
    println!("hypothesis — chains from independent threads schedule around each");
    println!("other. Latency-bound mixes (gcc, ammp) gain the most from SMT;");
    println!("bandwidth-bound ones are capped by the 8 B/cycle memory bus.");
}
