//! §6.3's structural-similarity claim, tested: "We believe that the
//! performance of the prescheduling and distance schemes would be
//! similar due to their structural similarity."
//!
//! Runs both quasi-static rivals at matched total sizes against the
//! segmented queue and the ideal queue.

use chainiq::{Bench, DistanceConfig, IqKind, PrescheduleConfig};
use chainiq_bench::{ideal, run, sample_size, segmented, PredictorConfig, TextTable};

fn main() {
    let sample = sample_size();
    println!("Quasi-static rivals at 320 total slots vs dependence chains");
    println!("({sample} committed instructions per run; IPC)\n");

    let mut t = TextTable::new(&[
        "bench",
        "ideal-512",
        "presched-320",
        "distance-320",
        "segmented-320*",
        "seg-512-128ch",
    ]);
    for bench in Bench::ALL {
        let ideal512 = run(bench, ideal(512), PredictorConfig::Base, sample);
        let pre = run(
            bench,
            IqKind::Prescheduled(PrescheduleConfig::paper(24)),
            PredictorConfig::Base,
            sample,
        );
        let dist = run(
            bench,
            IqKind::Distance(DistanceConfig::paper_sized(24)),
            PredictorConfig::Base,
            sample,
        );
        // Nearest 32-multiple to 320.
        let seg320 = run(bench, segmented(320, Some(128)), PredictorConfig::Comb, sample);
        let seg512 = run(bench, segmented(512, Some(128)), PredictorConfig::Comb, sample);
        t.row(&[
            bench.name().to_string(),
            format!("{:.3}", ideal512.ipc()),
            format!("{:.3}", pre.ipc()),
            format!("{:.3}", dist.ipc()),
            format!("{:.3}", seg320.ipc()),
            format!("{:.3}", seg512.ipc()),
        ]);
    }
    println!("{}", t.render());
    println!("* 10 segments x 32 entries; the paper's Figure 3 grid has no 320-entry");
    println!("  point, included here for a size-matched comparison.");
}
