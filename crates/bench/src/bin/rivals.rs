//! §6.3's structural-similarity claim, tested: "We believe that the
//! performance of the prescheduling and distance schemes would be
//! similar due to their structural similarity."
//!
//! Runs both quasi-static rivals at matched total sizes against the
//! segmented queue and the ideal queue.

use chainiq::{Bench, DistanceConfig, IqKind, PrescheduleConfig};
use chainiq_bench::{ideal, sample_size, segmented, PredictorConfig, Sweep, TextTable};

fn main() {
    let sample = sample_size();
    println!("Quasi-static rivals at 320 total slots vs dependence chains");
    println!("({sample} committed instructions per run; IPC)\n");

    // Five configurations per benchmark, one parallel sweep; column
    // order below matches submission order within each bench.
    let configs: [(IqKind, PredictorConfig); 5] = [
        (ideal(512), PredictorConfig::Base),
        (IqKind::Prescheduled(PrescheduleConfig::paper(24)), PredictorConfig::Base),
        (IqKind::Distance(DistanceConfig::paper_sized(24)), PredictorConfig::Base),
        // Nearest 32-multiple to 320.
        (segmented(320, Some(128)), PredictorConfig::Comb),
        (segmented(512, Some(128)), PredictorConfig::Comb),
    ];
    let mut sweep = Sweep::new();
    for bench in Bench::ALL {
        for (iq, pred) in configs {
            sweep.add(bench, iq, pred, sample);
        }
    }
    let results = sweep.run();

    let mut t = TextTable::new(&[
        "bench",
        "ideal-512",
        "presched-320",
        "distance-320",
        "segmented-320*",
        "seg-512-128ch",
    ]);
    for (bi, bench) in Bench::ALL.iter().enumerate() {
        let mut cells = vec![bench.name().to_string()];
        for ci in 0..configs.len() {
            cells.push(format!("{:.3}", results[bi * configs.len() + ci].ipc()));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("* 10 segments x 32 entries; the paper's Figure 3 grid has no 320-entry");
    println!("  point, included here for a size-matched comparison.");
}
