//! Figure 2 — performance of 512-entry segmented IQ configurations
//! relative to an ideal 512-entry IQ.
//!
//! For each benchmark, twelve bars: {unlimited, 128, 64} chain wires ×
//! {base, hmp, lrp, comb} predictor configurations, each reported as a
//! percentage of the ideal monolithic 512-entry queue's IPC. Also prints
//! the §4.5 deadlock-recovery cycle fraction (scalar claim S2).

use chainiq_bench::{
    ideal, sample_size, segmented, PredictorConfig, Sweep, TextTable, FIG2_BENCHES,
};

fn main() {
    let sample = sample_size();
    println!("Figure 2: 512-entry segmented IQ vs ideal 512-entry IQ");
    println!("({sample} committed instructions per run; values are % of ideal IPC)\n");

    let chain_configs: [(Option<usize>, &str); 3] =
        [(None, "unlimited"), (Some(128), "128 chains"), (Some(64), "64 chains")];

    // Grid: per benchmark, one ideal reference run plus 3 chain configs
    // × 4 predictor configs. Indices are recorded at submission and the
    // whole grid runs as one parallel sweep.
    let mut sweep = Sweep::new();
    let mut ideal_idx = Vec::new();
    let mut seg_idx = Vec::new(); // [bench][chain_cfg][pred]
    for bench in FIG2_BENCHES {
        ideal_idx.push(sweep.add(bench, ideal(512), PredictorConfig::Base, sample));
        let mut per_bench = [[0usize; 4]; 3];
        for (ci, (chains, _)) in chain_configs.iter().enumerate() {
            for (pi, pred) in PredictorConfig::ALL.iter().enumerate() {
                per_bench[ci][pi] = sweep.add(bench, segmented(512, *chains), *pred, sample);
            }
        }
        seg_idx.push(per_bench);
    }
    let results = sweep.run();

    let mut t = TextTable::new(&["bench", "chains", "base", "hmp", "lrp", "comb"]);
    // rel[chain_cfg][pred] summed across benchmarks for the average rows.
    let mut sums = [[0.0f64; 4]; 3];
    let mut deadlock_frac_max: f64 = 0.0;

    for (bi, bench) in FIG2_BENCHES.iter().enumerate() {
        let ideal_ipc = results[ideal_idx[bi]].ipc();
        for (ci, (_, label)) in chain_configs.iter().enumerate() {
            let mut cells = vec![bench.name().to_string(), (*label).to_string()];
            for (pi, _) in PredictorConfig::ALL.iter().enumerate() {
                let r = &results[seg_idx[bi][ci][pi]];
                let rel = 100.0 * r.ipc() / ideal_ipc;
                sums[ci][pi] += rel;
                if let Some(seg) = &r.segmented {
                    deadlock_frac_max = deadlock_frac_max.max(seg.deadlock_cycle_frac());
                }
                cells.push(format!("{rel:.1}"));
            }
            t.row(&cells);
        }
    }
    let n = FIG2_BENCHES.len() as f64;
    for (ci, (_, label)) in chain_configs.iter().enumerate() {
        let mut cells = vec!["average".to_string(), (*label).to_string()];
        for sum in &sums[ci] {
            cells.push(format!("{:.1}", sum / n));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!(
        "S2 (§4.5): worst-case deadlock-recovery cycle fraction across runs: {:.4}%",
        100.0 * deadlock_frac_max
    );
}
