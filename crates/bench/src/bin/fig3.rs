//! Figure 3 — IPC across instruction-queue sizes for every benchmark.
//!
//! Four curves per benchmark, as in the paper:
//! * **Ideal** — monolithic single-cycle IQ at 32..512 entries;
//! * **Comb-128chains / Comb-64chains** — the segmented IQ (32-entry
//!   segments, HMP + LRP) at the same sizes;
//! * **Prescheduled** — Michaud & Seznec's scheme with a 32-entry issue
//!   buffer plus 8/24/56/120 lines of 12 (128, 320, 704, 1472 slots).

use chainiq::Bench;
use chainiq_bench::{
    ideal, prescheduled, sample_size, segmented, PredictorConfig, Sweep, TextTable,
};

const SIZES: [usize; 5] = [32, 64, 128, 256, 512];
const PRESCHED_LINES: [usize; 4] = [8, 24, 56, 120];

fn main() {
    let sample = sample_size();
    println!("Figure 3: IPC vs IQ size ({sample} committed instructions per run)\n");

    // The full grid — every benchmark's four curves — as one parallel
    // sweep, with each curve's submission indices recorded for rendering.
    let mut sweep = Sweep::new();
    let mut ideal_idx = Vec::new();
    let mut comb_idx = Vec::new(); // [bench][chain_variant][size]
    let mut pre_idx = Vec::new();
    for bench in Bench::ALL {
        ideal_idx
            .push(SIZES.map(|size| sweep.add(bench, ideal(size), PredictorConfig::Base, sample)));
        comb_idx.push([128usize, 64].map(|chains| {
            SIZES.map(|size| {
                sweep.add(bench, segmented(size, Some(chains)), PredictorConfig::Comb, sample)
            })
        }));
        pre_idx.push(
            PRESCHED_LINES
                .map(|lines| sweep.add(bench, prescheduled(lines), PredictorConfig::Base, sample)),
        );
    }
    let results = sweep.run();

    for (bi, bench) in Bench::ALL.iter().enumerate() {
        let mut t = TextTable::new(&["config", "32", "64", "128", "256", "512"]);

        let mut row = vec!["ideal".to_string()];
        for idx in ideal_idx[bi] {
            row.push(format!("{:.3}", results[idx].ipc()));
        }
        t.row(&row);

        for (vi, chains) in [128usize, 64].into_iter().enumerate() {
            let mut row = vec![format!("comb-{chains}ch")];
            for idx in comb_idx[bi][vi] {
                row.push(format!("{:.3}", results[idx].ipc()));
            }
            t.row(&row);
        }

        // Prescheduled data points sit at 128/320/704/1472 total slots;
        // print them in a parallel row labelled by slot count.
        let mut row = vec!["presched".to_string()];
        let mut labels = vec!["slots".to_string()];
        for (li, lines) in PRESCHED_LINES.into_iter().enumerate() {
            row.push(format!("{:.3}", results[pre_idx[bi][li]].ipc()));
            labels.push(format!("{}", 32 + 12 * lines));
        }
        row.push("-".to_string());
        labels.push("-".to_string());
        t.row(&labels);
        t.row(&row);

        println!("== {} ==", bench.name());
        println!("{}", t.render());
    }
}
