//! Figure 3 — IPC across instruction-queue sizes for every benchmark.
//!
//! Four curves per benchmark, as in the paper:
//! * **Ideal** — monolithic single-cycle IQ at 32..512 entries;
//! * **Comb-128chains / Comb-64chains** — the segmented IQ (32-entry
//!   segments, HMP + LRP) at the same sizes;
//! * **Prescheduled** — Michaud & Seznec's scheme with a 32-entry issue
//!   buffer plus 8/24/56/120 lines of 12 (128, 320, 704, 1472 slots).

use chainiq::Bench;
use chainiq_bench::{ideal, prescheduled, run, sample_size, segmented, PredictorConfig, TextTable};

const SIZES: [usize; 5] = [32, 64, 128, 256, 512];
const PRESCHED_LINES: [usize; 4] = [8, 24, 56, 120];

fn main() {
    let sample = sample_size();
    println!("Figure 3: IPC vs IQ size ({sample} committed instructions per run)\n");

    for bench in Bench::ALL {
        let mut t = TextTable::new(&["config", "32", "64", "128", "256", "512"]);

        let mut row = vec!["ideal".to_string()];
        for size in SIZES {
            row.push(format!(
                "{:.3}",
                run(bench, ideal(size), PredictorConfig::Base, sample).ipc()
            ));
        }
        t.row(&row);

        for chains in [128usize, 64] {
            let mut row = vec![format!("comb-{chains}ch")];
            for size in SIZES {
                let r = run(bench, segmented(size, Some(chains)), PredictorConfig::Comb, sample);
                row.push(format!("{:.3}", r.ipc()));
            }
            t.row(&row);
        }

        // Prescheduled data points sit at 128/320/704/1472 total slots;
        // print them in a parallel row labelled by slot count.
        let mut row = vec!["presched".to_string()];
        let mut labels = vec!["slots".to_string()];
        for lines in PRESCHED_LINES {
            let r = run(bench, prescheduled(lines), PredictorConfig::Base, sample);
            row.push(format!("{:.3}", r.ipc()));
            labels.push(format!("{}", 32 + 12 * lines));
        }
        row.push("-".to_string());
        labels.push("-".to_string());
        t.row(&labels);
        t.row(&row);

        println!("== {} ==", bench.name());
        println!("{}", t.render());
    }
}
