//! Self-profiling perf gate: times the simulator itself over a fixed
//! (benchmark, segmented-config) matrix and writes `BENCH_perf.json` —
//! the repo's perf-trajectory artifact, diffed across commits to catch
//! kernel regressions.
//!
//! Unlike the experiment binaries this measures *simulator throughput*
//! (simulated kilocycles per wall-clock second), so every point runs
//! serially on the calling thread regardless of `CHAINIQ_JOBS`. The
//! matrix is fixed; only the per-run sample honors `CHAINIQ_SAMPLE` (so
//! CI can smoke it cheaply into a scratch `CHAINIQ_BENCH_DIR`).
//!
//! Exits non-zero if the aggregate throughput is not a positive finite
//! number — a malformed artifact must fail loudly, not rot silently.

use std::fmt::Write as _;
use std::time::Instant;

use chainiq::Bench;
use chainiq_bench::{results_dir, sample_size, segmented, PredictorConfig, RunSpec, TextTable};

/// The fixed matrix: a spread of queue geometries, chain budgets and
/// predictor settings so the gate exercises signal traffic, promotion
/// pressure and chain churn, not one lucky configuration.
fn matrix(sample: u64) -> Vec<(String, RunSpec)> {
    let points = [
        (Bench::Equake, 512, Some(128), PredictorConfig::Comb),
        (Bench::Gcc, 512, Some(128), PredictorConfig::Comb),
        (Bench::Swim, 512, None, PredictorConfig::Base),
        (Bench::Ammp, 256, Some(64), PredictorConfig::Comb),
        (Bench::Vortex, 128, Some(64), PredictorConfig::Hmp),
        (Bench::Twolf, 256, Some(128), PredictorConfig::Lrp),
    ];
    points
        .iter()
        .map(|&(bench, entries, chains, pred)| {
            let chain_label = chains.map_or_else(|| "inf".to_string(), |c| c.to_string());
            let label = format!("{}/seg{}c{}/{}", bench.name(), entries, chain_label, pred.label());
            (label, RunSpec::new(bench, segmented(entries, chains), pred, sample))
        })
        .collect()
}

struct Point {
    label: String,
    wall_s: f64,
    sim_cycles: u64,
    committed_insts: u64,
}

impl Point {
    fn kcycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_cycles as f64 / self.wall_s / 1e3
        } else {
            0.0
        }
    }
}

fn json(sample: u64, points: &[Point], agg: &Point) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"suite\": \"perf\",");
    let _ = writeln!(s, "  \"sample\": {sample},");
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"point\": \"{}\", \"sim_kcycles_per_sec\": {:.3}, \"wall_s\": {:.6}, \
             \"sim_cycles\": {}, \"committed_insts\": {}}}",
            p.label,
            p.kcycles_per_sec(),
            p.wall_s,
            p.sim_cycles,
            p.committed_insts,
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"aggregate\": {{\"sim_kcycles_per_sec\": {:.3}, \"wall_s\": {:.6}, \
         \"sim_cycles\": {}, \"committed_insts\": {}}}",
        agg.kcycles_per_sec(),
        agg.wall_s,
        agg.sim_cycles,
        agg.committed_insts,
    );
    s.push_str("}\n");
    s
}

fn main() -> std::process::ExitCode {
    let sample = sample_size();
    println!("perf: simulator self-profile ({sample} committed instructions per point)\n");

    let mut points = Vec::new();
    for (label, spec) in matrix(sample) {
        eprintln!("  running {label} ...");
        let t0 = Instant::now();
        let result = spec.execute();
        let wall_s = t0.elapsed().as_secs_f64();
        points.push(Point {
            label,
            wall_s,
            sim_cycles: result.stats.cycles,
            committed_insts: result.stats.committed,
        });
    }

    let agg = Point {
        label: "aggregate".to_string(),
        wall_s: points.iter().map(|p| p.wall_s).sum(),
        sim_cycles: points.iter().map(|p| p.sim_cycles).sum(),
        committed_insts: points.iter().map(|p| p.committed_insts).sum(),
    };

    let mut t = TextTable::new(&["point", "kcycles/s", "wall", "sim cycles", "committed"]);
    for p in points.iter().chain(std::iter::once(&agg)) {
        t.row(&[
            p.label.clone(),
            format!("{:.1}", p.kcycles_per_sec()),
            format!("{:.2} s", p.wall_s),
            p.sim_cycles.to_string(),
            p.committed_insts.to_string(),
        ]);
    }
    println!("{}", t.render());

    let dir = results_dir();
    let path = dir.join("BENCH_perf.json");
    let body = json(sample, &points, &agg);
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &body)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            return std::process::ExitCode::from(2);
        }
    }

    let throughput = agg.kcycles_per_sec();
    if throughput.is_finite() && throughput > 0.0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("error: aggregate throughput is {throughput}; artifact would be malformed");
        std::process::ExitCode::from(1)
    }
}
