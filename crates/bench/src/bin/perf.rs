//! Self-profiling perf gate: times the simulator itself over a fixed
//! (benchmark, queue-config) matrix and writes `BENCH_perf.json` —
//! the repo's perf-trajectory artifact, diffed across commits to catch
//! kernel regressions — plus one appended line per run in
//! `BENCH_perf_history.jsonl`, so the trajectory across commits survives
//! the snapshot file being overwritten.
//!
//! Unlike the experiment binaries this measures *simulator throughput*
//! (simulated kilocycles per wall-clock second), so every point runs
//! serially on the calling thread regardless of `CHAINIQ_JOBS`. The
//! matrix is fixed; only the per-run sample honors `CHAINIQ_SAMPLE` (so
//! CI can smoke it cheaply into a scratch `CHAINIQ_BENCH_DIR`). The
//! history line stamps the revision from `CHAINIQ_GIT_REV` (an input —
//! the binary never shells out to `git`).
//!
//! Exits non-zero if the aggregate throughput is not a positive finite
//! number — a malformed artifact must fail loudly, not rot silently.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use chainiq::core::{SegmentedIq, SegmentedIqConfig};
use chainiq::{AddressSpace, Bench, SimConfig, SmtPipeline, SyntheticWorkload};
use chainiq_bench::knob::git_rev;
use chainiq_bench::{
    results_dir, sample_size, segmented, PredictorConfig, RunSpec, TextTable, DEFAULT_SEED,
};

/// One matrix point: either a plain single-thread run or an SMT thread
/// mix over a shared segmented queue (the SMT pipeline exercises the
/// multi-thread wakeup/bookkeeping paths the single-thread runs never
/// touch).
enum PointSpec {
    Single(RunSpec),
    Smt(Vec<Bench>),
}

/// The fixed matrix: a spread of queue geometries, chain budgets and
/// predictor settings so the gate exercises signal traffic, promotion
/// pressure and chain churn, not one lucky configuration. `swim` appears
/// both chain-free/base and chain-free/comb so predictor overhead on a
/// bandwidth-bound workload is its own point, and the SMT mix profiles
/// the shared-queue pipeline.
fn matrix(sample: u64) -> Vec<(String, PointSpec)> {
    let points = [
        (Bench::Equake, 512, Some(128), PredictorConfig::Comb),
        (Bench::Gcc, 512, Some(128), PredictorConfig::Comb),
        (Bench::Swim, 512, None, PredictorConfig::Base),
        (Bench::Swim, 512, None, PredictorConfig::Comb),
        (Bench::Ammp, 256, Some(64), PredictorConfig::Comb),
        (Bench::Vortex, 128, Some(64), PredictorConfig::Hmp),
        (Bench::Twolf, 256, Some(128), PredictorConfig::Lrp),
    ];
    let mut out: Vec<(String, PointSpec)> = points
        .iter()
        .map(|&(bench, entries, chains, pred)| {
            let chain_label = chains.map_or_else(|| "inf".to_string(), |c| c.to_string());
            let label = format!("{}/seg{}c{}/{}", bench.name(), entries, chain_label, pred.label());
            (
                label,
                PointSpec::Single(RunSpec::new(bench, segmented(entries, chains), pred, sample)),
            )
        })
        .collect();
    out.push((
        "smt2:swim+gcc/seg512c128/comb".to_string(),
        PointSpec::Smt(vec![Bench::Swim, Bench::Gcc]),
    ));
    out
}

// Not a multiple of any predictor-table size, so thread contexts do not
// alias exactly onto the same PHT/BTB/HMP slots (same layout as the smt
// experiment binary).
const STRIDE: u64 = (1 << 40) | 0x94_530;

fn run_smt(mix: &[Bench], insts: u64) -> (u64, u64) {
    let mut cfg = SimConfig::default().rob_for_iq(512).with_extra_dispatch_cycle();
    cfg.use_hmp = true;
    cfg.use_lrp = true;
    let mut qc = SegmentedIqConfig::paper(512, Some(128));
    qc.two_chain_tracking = false;
    let threads: Vec<AddressSpace<SyntheticWorkload>> = mix
        .iter()
        .enumerate()
        .map(|(t, b)| {
            AddressSpace::new(
                SyntheticWorkload::from_profile(b.profile(), DEFAULT_SEED + t as u64),
                t as u64 * STRIDE,
                t as u64 * STRIDE,
            )
        })
        .collect();
    let mut smt = SmtPipeline::new(cfg, SegmentedIq::new(qc), threads);
    let stats = smt.run(insts);
    (stats.cycles, stats.committed)
}

struct Point {
    label: String,
    wall_s: f64,
    sim_cycles: u64,
    committed_insts: u64,
}

impl Point {
    fn kcycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_cycles as f64 / self.wall_s / 1e3
        } else {
            0.0
        }
    }
}

fn point_json(p: &Point) -> String {
    format!(
        "{{\"point\": \"{}\", \"sim_kcycles_per_sec\": {:.3}, \"wall_s\": {:.6}, \
         \"sim_cycles\": {}, \"committed_insts\": {}}}",
        p.label,
        p.kcycles_per_sec(),
        p.wall_s,
        p.sim_cycles,
        p.committed_insts,
    )
}

fn json(sample: u64, points: &[Point], agg: &Point) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"suite\": \"perf\",");
    let _ = writeln!(s, "  \"sample\": {sample},");
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(s, "    {}", point_json(p));
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"aggregate\": {{\"sim_kcycles_per_sec\": {:.3}, \"wall_s\": {:.6}, \
         \"sim_cycles\": {}, \"committed_insts\": {}}}",
        agg.kcycles_per_sec(),
        agg.wall_s,
        agg.sim_cycles,
        agg.committed_insts,
    );
    s.push_str("}\n");
    s
}

/// One self-contained JSON object — a single line, so the history file
/// stays `jsonl` and plain `grep`/`tail` keep working on it.
fn history_line(rev: &str, sample: u64, points: &[Point], agg: &Point) -> String {
    let mut s = String::from("{");
    let _ = write!(s, "\"suite\": \"perf\", \"rev\": \"{rev}\", \"sample\": {sample}, ");
    let _ = write!(
        s,
        "\"aggregate\": {{\"sim_kcycles_per_sec\": {:.3}, \"wall_s\": {:.6}, \
         \"sim_cycles\": {}, \"committed_insts\": {}}}, ",
        agg.kcycles_per_sec(),
        agg.wall_s,
        agg.sim_cycles,
        agg.committed_insts,
    );
    s.push_str("\"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&point_json(p));
    }
    s.push_str("]}\n");
    s
}

fn main() -> std::process::ExitCode {
    let sample = sample_size();
    println!("perf: simulator self-profile ({sample} committed instructions per point)\n");

    let mut points = Vec::new();
    for (label, spec) in matrix(sample) {
        eprintln!("  running {label} ...");
        let t0 = Instant::now();
        let (sim_cycles, committed_insts) = match spec {
            PointSpec::Single(spec) => {
                let result = spec.execute();
                (result.stats.cycles, result.stats.committed)
            }
            PointSpec::Smt(mix) => run_smt(&mix, sample),
        };
        let wall_s = t0.elapsed().as_secs_f64();
        points.push(Point { label, wall_s, sim_cycles, committed_insts });
    }

    let agg = Point {
        label: "aggregate".to_string(),
        wall_s: points.iter().map(|p| p.wall_s).sum(),
        sim_cycles: points.iter().map(|p| p.sim_cycles).sum(),
        committed_insts: points.iter().map(|p| p.committed_insts).sum(),
    };

    let mut t = TextTable::new(&["point", "kcycles/s", "wall", "sim cycles", "committed"]);
    for p in points.iter().chain(std::iter::once(&agg)) {
        t.row(&[
            p.label.clone(),
            format!("{:.1}", p.kcycles_per_sec()),
            format!("{:.2} s", p.wall_s),
            p.sim_cycles.to_string(),
            p.committed_insts.to_string(),
        ]);
    }
    println!("{}", t.render());

    let dir = results_dir();
    let path = dir.join("BENCH_perf.json");
    let body = json(sample, &points, &agg);
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &body)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            return std::process::ExitCode::from(2);
        }
    }

    let history_path = dir.join("BENCH_perf_history.jsonl");
    let line = history_line(&git_rev(), sample, &points, &agg);
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended {}", history_path.display()),
        Err(e) => {
            eprintln!("error: could not append {}: {e}", history_path.display());
            return std::process::ExitCode::from(2);
        }
    }

    let throughput = agg.kcycles_per_sec();
    if throughput.is_finite() && throughput > 0.0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("error: aggregate throughput is {throughput}; artifact would be malformed");
        std::process::ExitCode::from(1)
    }
}
