//! Calibration diagnostic: per-benchmark machine behaviour across a few
//! key configurations. Not a paper artifact — used to tune the synthetic
//! workload profiles (DESIGN.md §2) and sanity-check result shapes.

use chainiq::Bench;
use chainiq_bench::{ideal, sample_size, segmented, PredictorConfig, Sweep, TextTable};

fn main() {
    let sample = sample_size();
    println!("chainiq calibration — {sample} committed instructions per run\n");

    // Three runs per benchmark (ideal-32, ideal-512, seg-512), row-major.
    let mut sweep = Sweep::new();
    for bench in Bench::ALL {
        sweep.add(bench, ideal(32), PredictorConfig::Base, sample);
        sweep.add(bench, ideal(512), PredictorConfig::Base, sample);
        sweep.add(bench, segmented(512, Some(128)), PredictorConfig::Comb, sample);
    }
    let results = sweep.run();

    let mut t = TextTable::new(&[
        "bench",
        "ipc@32",
        "ipc@512",
        "seg512/ideal",
        "bp-acc",
        "l1d-miss",
        "l2-miss",
        "iq-occ",
        "rob-occ",
        "br-frac",
    ]);
    for (bi, bench) in Bench::ALL.iter().enumerate() {
        let small = &results[bi * 3];
        let big = &results[bi * 3 + 1];
        let seg = &results[bi * 3 + 2];
        let s = &big.stats;
        t.row(&[
            bench.name().into(),
            format!("{:.3}", small.ipc()),
            format!("{:.3}", big.ipc()),
            format!("{:.2}", seg.ipc() / big.ipc()),
            format!("{:.3}", s.branch_accuracy()),
            format!("{:.3}", s.l1d_miss_ratio()),
            format!("{:.3}", s.mem.l2.miss_ratio()),
            format!("{:.1}", s.iq.mean_occupancy()),
            format!("{:.1}", s.rob_mean_occupancy),
            format!("{:.3}", s.branch_lookups as f64 / s.committed.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
}
