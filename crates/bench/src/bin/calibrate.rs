//! Calibration diagnostic: per-benchmark machine behaviour across a few
//! key configurations. Not a paper artifact — used to tune the synthetic
//! workload profiles (DESIGN.md §2) and sanity-check result shapes.

use chainiq::Bench;
use chainiq_bench::{ideal, run, sample_size, segmented, PredictorConfig, TextTable};

fn main() {
    let sample = sample_size();
    println!("chainiq calibration — {sample} committed instructions per run\n");
    let mut t = TextTable::new(&[
        "bench",
        "ipc@32",
        "ipc@512",
        "seg512/ideal",
        "bp-acc",
        "l1d-miss",
        "l2-miss",
        "iq-occ",
        "rob-occ",
        "br-frac",
    ]);
    for bench in Bench::ALL {
        let small = run(bench, ideal(32), PredictorConfig::Base, sample);
        let big = run(bench, ideal(512), PredictorConfig::Base, sample);
        let seg = run(bench, segmented(512, Some(128)), PredictorConfig::Comb, sample);
        let s = &big.stats;
        t.row(&[
            bench.name().into(),
            format!("{:.3}", small.ipc()),
            format!("{:.3}", big.ipc()),
            format!("{:.2}", seg.ipc() / big.ipc()),
            format!("{:.3}", s.branch_accuracy()),
            format!("{:.3}", s.l1d_miss_ratio()),
            format!("{:.3}", s.mem.l2.miss_ratio()),
            format!("{:.1}", s.iq.mean_occupancy()),
            format!("{:.1}", s.rob_mean_occupancy),
            format!("{:.3}", s.branch_lookups as f64 / s.committed.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
}
