//! Table 2 — chain usage for the 512-entry segmented IQ with unlimited
//! chains: average and peak live-chain counts per benchmark under the
//! four predictor configurations.
//!
//! Also prints the paper's related scalar claims: the HMP's accuracy and
//! coverage (S1), the fraction of instructions with two outstanding
//! operands in different chains (S3, ~35%), and the fraction of chains
//! headed by loads in the base configuration (S4, ~65%).

use chainiq::Bench;
use chainiq_bench::{sample_size, segmented, PredictorConfig, Sweep, TextTable};

fn main() {
    let sample = sample_size();
    println!("Table 2: chain usage, 512-entry segmented IQ, unlimited chains");
    println!("({sample} committed instructions per run)\n");

    let benches = [
        Bench::Ammp,
        Bench::Applu,
        Bench::Equake,
        Bench::Gcc,
        Bench::Mgrid,
        Bench::Swim,
        Bench::Twolf,
        Bench::Vortex,
    ];

    // One parallel sweep over the bench × predictor grid; specs are
    // submitted row-major, so result index = bench * 4 + predictor.
    let mut sweep = Sweep::new();
    for bench in benches {
        for pred in PredictorConfig::ALL {
            sweep.add(bench, segmented(512, None), pred, sample);
        }
    }
    let results = sweep.run();

    let mut t = TextTable::new(&[
        "bench",
        "base avg",
        "base peak",
        "hmp avg",
        "hmp peak",
        "lrp avg",
        "lrp peak",
        "comb avg",
        "comb peak",
    ]);
    let mut avg_sums = [0.0f64; 4];
    let mut dual_dep_sum = 0.0;
    let mut load_head_sum = 0.0;
    let mut hmp_acc_min: f64 = 1.0;
    let mut hmp_cov_sum = 0.0;

    for (bi, bench) in benches.iter().enumerate() {
        let mut cells = vec![bench.name().to_string()];
        for (pi, pred) in PredictorConfig::ALL.iter().enumerate() {
            let r = &results[bi * PredictorConfig::ALL.len() + pi];
            let seg = r.segmented.as_ref().expect("segmented stats");
            avg_sums[pi] += seg.chains.mean_live();
            cells.push(format!("{:.0}", seg.chains.mean_live()));
            cells.push(format!("{}", seg.chains.peak_live));
            match pred {
                PredictorConfig::Base => {
                    dual_dep_sum += seg.dual_dep_frac();
                    load_head_sum += seg.chains.load_head_frac();
                }
                PredictorConfig::Hmp => {
                    hmp_acc_min = hmp_acc_min.min(r.stats.hmp.hit_accuracy());
                    hmp_cov_sum += r.stats.hmp.hit_coverage();
                }
                _ => {}
            }
        }
        t.row(&cells);
    }
    let n = benches.len() as f64;
    let mut avg_row = vec!["average".to_string()];
    for s in avg_sums {
        avg_row.push(format!("{:.0}", s / n));
        avg_row.push("-".to_string());
    }
    t.row(&avg_row);
    println!("{}", t.render());

    println!("Reductions vs base (average of averages):");
    for (pi, label) in [(1, "hmp"), (2, "lrp"), (3, "comb")] {
        println!("  {label}: {:.0}%", 100.0 * (1.0 - avg_sums[pi] / avg_sums[0]));
    }
    println!();
    println!(
        "S1 (§6.1): HMP hit-prediction accuracy (worst benchmark): {:.1}%",
        100.0 * hmp_acc_min
    );
    println!("S1 (§6.1): HMP hit coverage (mean): {:.1}%", 100.0 * hmp_cov_sum / n);
    println!(
        "S3 (§4.3): instructions with two operands outstanding in different chains (mean): {:.1}%",
        100.0 * dual_dep_sum / n
    );
    println!(
        "S4 (§4.4): chains headed by loads in the base configuration (mean): {:.1}%",
        100.0 * load_head_sum / n
    );
}
