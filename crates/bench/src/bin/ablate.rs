//! Ablation study: the IPC contribution of each §4 enhancement and of
//! the promotion-policy details DESIGN.md §4 calls out.
//!
//! For each benchmark, runs the full segmented configuration and then
//! each variant with exactly one mechanism disabled, printing the IPC
//! delta. (The predictors' ablation — base/hmp/lrp/comb — is Figure 2's
//! job; this binary covers the *structural* choices.)

use chainiq::{Bench, IqKind, SegmentedIqConfig};
use chainiq_bench::{sample_size, PredictorConfig, Sweep, TextTable};

fn variants() -> Vec<(&'static str, SegmentedIqConfig)> {
    let base = SegmentedIqConfig::paper(512, Some(128));
    let mut no_pushdown = base;
    no_pushdown.pushdown = false;
    let mut no_bypass = base;
    no_bypass.bypass = false;
    let mut no_descent = base;
    no_descent.countdown_includes_descent = false;
    let mut narrow_promote = base;
    narrow_promote.promote_width = 4;
    let mut small_segments = base;
    small_segments.num_segments = 32;
    small_segments.segment_size = 16;
    vec![
        ("full", base),
        ("-pushdown (§4.1)", no_pushdown),
        ("-bypass (§4.2)", no_bypass),
        ("-descent countdown", no_descent),
        ("promote width 4", narrow_promote),
        ("16-entry segments", small_segments),
    ]
}

fn main() {
    let sample = sample_size();
    println!("Ablations: 512-entry segmented IQ, 128 chains, HMP+LRP");
    println!("({sample} committed instructions per run; cells are IPC, deltas vs full)\n");

    let benches = [Bench::Swim, Bench::Mgrid, Bench::Equake, Bench::Gcc, Bench::Vortex];
    let variants = variants();

    // Row-major bench × variant grid, one parallel sweep. Comb = both
    // predictors on, matching the old `run_one(.., true, true, ..)`.
    let mut sweep = Sweep::new();
    for bench in benches {
        for (_, cfg) in &variants {
            sweep.add(bench, IqKind::Segmented(*cfg), PredictorConfig::Comb, sample);
        }
    }
    let results = sweep.run();

    let mut header = vec!["bench"];
    header.extend(variants.iter().map(|(n, _)| *n));
    let mut t = TextTable::new(&header);

    for (bi, bench) in benches.iter().enumerate() {
        let mut cells = vec![bench.name().to_string()];
        let full_ipc = results[bi * variants.len()].ipc();
        for vi in 0..variants.len() {
            let ipc = results[bi * variants.len() + vi].ipc();
            if vi == 0 {
                cells.push(format!("{full_ipc:.3}"));
            } else {
                cells.push(format!("{:+.1}%", 100.0 * (ipc / full_ipc - 1.0)));
            }
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("Reading: a strongly negative cell means the paper's mechanism earns its");
    println!("hardware; bypass matters most for low-occupancy (branchy) benchmarks,");
    println!("pushdown for deep dependence chains that clog the top segment.");
}
