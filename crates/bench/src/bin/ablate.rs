//! Ablation study: the IPC contribution of each §4 enhancement and of
//! the promotion-policy details DESIGN.md §4 calls out.
//!
//! For each benchmark, runs the full segmented configuration and then
//! each variant with exactly one mechanism disabled, printing the IPC
//! delta. (The predictors' ablation — base/hmp/lrp/comb — is Figure 2's
//! job; this binary covers the *structural* choices.)

use chainiq::{run_one, Bench, IqKind, SegmentedIqConfig};
use chainiq_bench::{sample_size, TextTable, DEFAULT_SEED};

fn variants() -> Vec<(&'static str, SegmentedIqConfig)> {
    let base = SegmentedIqConfig::paper(512, Some(128));
    let mut no_pushdown = base;
    no_pushdown.pushdown = false;
    let mut no_bypass = base;
    no_bypass.bypass = false;
    let mut no_descent = base;
    no_descent.countdown_includes_descent = false;
    let mut narrow_promote = base;
    narrow_promote.promote_width = 4;
    let mut small_segments = base;
    small_segments.num_segments = 32;
    small_segments.segment_size = 16;
    vec![
        ("full", base),
        ("-pushdown (§4.1)", no_pushdown),
        ("-bypass (§4.2)", no_bypass),
        ("-descent countdown", no_descent),
        ("promote width 4", narrow_promote),
        ("16-entry segments", small_segments),
    ]
}

fn main() {
    let sample = sample_size();
    println!("Ablations: 512-entry segmented IQ, 128 chains, HMP+LRP");
    println!("({sample} committed instructions per run; cells are IPC, deltas vs full)\n");

    let names: Vec<&str> = variants().iter().map(|(n, _)| *n).collect();
    let mut header = vec!["bench"];
    header.extend(names.iter());
    let mut t = TextTable::new(&header);

    for bench in [Bench::Swim, Bench::Mgrid, Bench::Equake, Bench::Gcc, Bench::Vortex] {
        let mut cells = vec![bench.name().to_string()];
        let mut full_ipc = 0.0;
        for (i, (_, cfg)) in variants().into_iter().enumerate() {
            let r =
                run_one(bench.profile(), IqKind::Segmented(cfg), true, true, sample, DEFAULT_SEED);
            if i == 0 {
                full_ipc = r.ipc();
                cells.push(format!("{:.3}", full_ipc));
            } else {
                cells.push(format!("{:+.1}%", 100.0 * (r.ipc() / full_ipc - 1.0)));
            }
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("Reading: a strongly negative cell means the paper's mechanism earns its");
    println!("hardware; bypass matters most for low-occupancy (branchy) benchmarks,");
    println!("pushdown for deep dependence chains that clog the top segment.");
}
