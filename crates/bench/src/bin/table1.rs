//! Table 1 — processor parameters.
//!
//! Prints the simulated machine configuration and asserts that the
//! defaults match the paper's Table 1 exactly.

use chainiq::SimConfig;

fn main() {
    let c = SimConfig::default();
    println!("Table 1: processor parameters (chainiq defaults)\n");
    println!(
        "Front-end pipeline depth      {} cycles fetch-to-dispatch (10 fetch-to-decode + 5 decode-to-dispatch)",
        c.front_end_depth
    );
    println!(
        "Fetch bandwidth               up to {} instructions/cycle; max {} branches/cycle",
        c.fetch_width, c.max_branches_per_fetch
    );
    println!(
        "Branch predictor              hybrid local/global (21264-style): global {}-bit history / {}-entry PHT;",
        c.branch.global_history_bits,
        1usize << c.branch.global_history_bits
    );
    println!(
        "                              local {} x {}-bit histories / {}-entry PHT; choice {}-entry PHT",
        c.branch.local_histories,
        c.branch.local_history_bits,
        1usize << c.branch.local_history_bits,
        1usize << c.branch.global_history_bits
    );
    println!(
        "Branch target buffer          {} entries, {}-way set associative",
        c.branch.btb_entries, c.branch.btb_assoc
    );
    println!(
        "Dispatch/issue/commit         up to {}/{}/{} instructions per cycle",
        c.dispatch_width, c.issue_width, c.commit_width
    );
    println!(
        "Function units                {} each: int ALU, int mul, FP add/sub, FP mul/div/sqrt; {} rd + {} wr cache ports",
        c.fus_per_kind, c.read_ports, c.write_ports
    );
    println!("Latencies                     int: mul 3, div 20, others 1; FP: add 2, mul 4, div 12, sqrt 24");
    println!(
        "L1 split I/D caches           {} KB, {}-way, {}-byte lines; I: {}-cycle, D: {}-cycle, {} MSHRs",
        c.mem.l1d.size_bytes >> 10,
        c.mem.l1d.assoc,
        c.mem.l1d.line_bytes,
        c.mem.l1i.latency,
        c.mem.l1d.latency,
        c.mem.l1d.mshrs
    );
    println!(
        "L2 unified cache              {} MB, {}-way, {}-byte lines, {}-cycle latency, {} MSHRs, {} B/cycle to L1",
        c.mem.l2.size_bytes >> 20,
        c.mem.l2.assoc,
        c.mem.l2.line_bytes,
        c.mem.l2.latency,
        c.mem.l2.mshrs,
        c.mem.l1_l2_bytes_per_cycle
    );
    println!(
        "Main memory                   {}-cycle latency, {} bytes/cpu-cycle bandwidth",
        c.mem.memory_latency, c.mem.memory_bytes_per_cycle
    );
    println!("ROB                           3x the IQ size (applied per experiment)");
    println!("Extra dispatch cycle          charged to segmented and prescheduling IQs (§5)");
}
