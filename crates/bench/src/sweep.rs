//! The parallel sweep executor: every experiment binary is a grid of
//! fully independent simulations, so the harness builds a list of
//! [`RunSpec`]s, fans them out across `CHAINIQ_JOBS` workers (default:
//! all hardware threads), and collects the [`RunResult`]s **by
//! submission index**.
//!
//! Each simulation is deterministic given its spec, so a sweep's results
//! — and therefore every rendered table — are byte-identical whatever
//! the worker count; parallelism only changes wall-clock. Progress
//! (completed/total, elapsed, spec label) is reported on stderr, keeping
//! stdout reserved for the artifact tables.

use std::time::Instant;

use chainiq::{Bench, IqKind, RunResult};

use crate::{knob, pool, PredictorConfig, DEFAULT_SEED};

/// One point of an experiment grid: everything `chainiq::run_one` needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Benchmark profile to simulate.
    pub bench: Bench,
    /// Instruction-queue design under test.
    pub iq: IqKind,
    /// Predictor configuration (Figure 2 bar).
    pub pred: PredictorConfig,
    /// Committed instructions to simulate.
    pub sample: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl RunSpec {
    /// A spec at the shared [`DEFAULT_SEED`].
    #[must_use]
    pub fn new(bench: Bench, iq: IqKind, pred: PredictorConfig, sample: u64) -> Self {
        RunSpec { bench, iq, pred, sample, seed: DEFAULT_SEED }
    }

    /// The same spec with a different workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Executes this spec (serially, on the calling thread).
    #[must_use]
    pub fn execute(&self) -> RunResult {
        chainiq::run_one(
            self.bench.profile(),
            self.iq,
            self.pred.hmp(),
            self.pred.lrp(),
            self.sample,
            self.seed,
        )
    }

    /// Short label for progress lines, e.g. `swim/seg512/comb`.
    #[must_use]
    pub fn label(&self) -> String {
        let iq = match self.iq {
            IqKind::Ideal(n) => format!("ideal{n}"),
            IqKind::Segmented(c) => format!("seg{}", c.capacity()),
            IqKind::Prescheduled(c) => format!("presched{}", c.capacity()),
            IqKind::Distance(c) => format!("dist{}", c.capacity()),
        };
        format!("{}/{}/{}", self.bench.name(), iq, self.pred.label())
    }
}

/// An ordered list of run specs, executed in one parallel fan-out.
///
/// `push`/`add` return the spec's **submission index**; [`Sweep::run`]
/// returns results at exactly those indices, so binaries record indices
/// while building the grid and render tables from the collected vector.
///
/// # Examples
///
/// ```no_run
/// use chainiq_bench::{ideal, PredictorConfig, RunSpec, Sweep};
/// use chainiq::Bench;
///
/// let mut sweep = Sweep::new();
/// let i = sweep.add(Bench::Swim, ideal(32), PredictorConfig::Base, 10_000);
/// let results = sweep.run();
/// println!("IPC {:.3}", results[i].ipc());
/// ```
#[derive(Debug, Default)]
pub struct Sweep {
    specs: Vec<RunSpec>,
}

impl Sweep {
    /// An empty sweep.
    #[must_use]
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Appends a spec, returning its submission index.
    pub fn push(&mut self, spec: RunSpec) -> usize {
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Appends a default-seed spec, returning its submission index.
    pub fn add(&mut self, bench: Bench, iq: IqKind, pred: PredictorConfig, sample: u64) -> usize {
        self.push(RunSpec::new(bench, iq, pred, sample))
    }

    /// Number of queued specs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the sweep is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The queued specs, in submission order.
    #[must_use]
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Executes the sweep on `CHAINIQ_JOBS` workers (default: hardware
    /// parallelism) and returns results in submission order.
    #[must_use]
    pub fn run(self) -> Vec<RunResult> {
        let jobs = knob::jobs();
        self.run_with_jobs(jobs)
    }

    /// Executes the sweep on an explicit worker count (bypassing the
    /// `CHAINIQ_JOBS` knob — used by tests and callers that know better).
    #[must_use]
    pub fn run_with_jobs(self, jobs: usize) -> Vec<RunResult> {
        let total = self.specs.len();
        let t0 = Instant::now();
        let mut done = 0usize;
        let results = pool::run_indexed(
            &self.specs,
            jobs,
            |_, spec| spec.execute(),
            |i, _| {
                done += 1;
                eprintln!(
                    "  [{done:>3}/{total}] {:<36} ({:.1}s elapsed)",
                    self.specs[i].label(),
                    t0.elapsed().as_secs_f64()
                );
            },
        );
        eprintln!(
            "sweep: {total} runs in {:.1}s on {} worker{}",
            t0.elapsed().as_secs_f64(),
            jobs.max(1),
            if jobs == 1 { "" } else { "s" }
        );
        results
    }
}

/// Generic fan-out for experiment grids whose points are *not* plain
/// `RunSpec`s (the SMT binary's thread mixes, for example): runs `f`
/// over `items` on `CHAINIQ_JOBS` workers with the same submission-order
/// collection and stderr progress reporting as [`Sweep::run`].
#[must_use]
pub fn sweep_map<J, R, F>(what: &str, items: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let jobs = knob::jobs();
    let total = items.len();
    let t0 = Instant::now();
    let mut done = 0usize;
    let results = pool::run_indexed(
        items,
        jobs,
        |_, item| f(item),
        |_, _| {
            done += 1;
            eprintln!("  [{done:>3}/{total}] {what} ({:.1}s elapsed)", t0.elapsed().as_secs_f64());
        },
    );
    eprintln!("sweep: {total} {what} jobs in {:.1}s on {jobs} workers", t0.elapsed().as_secs_f64());
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ideal, segmented};

    #[test]
    fn indices_are_submission_order() {
        let mut s = Sweep::new();
        let a = s.add(Bench::Swim, ideal(32), PredictorConfig::Base, 1000);
        let b = s.add(Bench::Gcc, segmented(64, Some(64)), PredictorConfig::Comb, 1000);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.specs()[a].bench, Bench::Swim);
        assert_eq!(s.specs()[b].pred, PredictorConfig::Comb);
    }

    #[test]
    fn labels_name_bench_queue_and_predictor() {
        let spec = RunSpec::new(Bench::Swim, ideal(512), PredictorConfig::Base, 1000);
        assert_eq!(spec.label(), "swim/ideal512/base");
        let spec = RunSpec::new(Bench::Gcc, segmented(512, Some(128)), PredictorConfig::Comb, 1000);
        assert_eq!(spec.label(), "gcc/seg512/comb");
    }

    #[test]
    fn with_seed_overrides_default() {
        let spec = RunSpec::new(Bench::Swim, ideal(32), PredictorConfig::Base, 1000);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.with_seed(7).seed, 7);
    }
}
