//! The parallel sweep executor: every experiment binary is a grid of
//! fully independent simulations, so the harness builds a list of
//! [`RunSpec`]s, fans them out across `CHAINIQ_JOBS` workers (default:
//! all hardware threads), and collects the [`RunResult`]s **by
//! submission index**.
//!
//! Each simulation is deterministic given its spec, so a sweep's results
//! — and therefore every rendered table — are byte-identical whatever
//! the worker count; parallelism only changes wall-clock. Progress
//! (completed/total, elapsed, spec label) is reported on stderr, keeping
//! stdout reserved for the artifact tables.

use std::path::Path;
use std::time::Instant;

use chainiq::{Bench, CkptOutcome, CkptPlan, IqKind, RunResult};

use crate::{knob, pool, PredictorConfig, DEFAULT_SEED};

/// Where sweep progress lines go.
///
/// The experiment binaries report progress on stderr ([`StderrSink`],
/// the default), keeping stdout reserved for artifact tables. A host
/// that runs many sweeps concurrently — the `chainiq-serve` daemon —
/// injects its own sink instead, attaching each line to the owning
/// job's progress stream rather than interleaving raw stderr across
/// jobs.
pub trait ProgressSink {
    /// Delivers one complete progress line (no trailing newline).
    fn line(&self, line: &str);
}

/// The default sink: one `eprintln!` per line.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl ProgressSink for StderrSink {
    fn line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// A sink that drops every line (quiet hosts, tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn line(&self, _line: &str) {}
}

/// One point of an experiment grid: everything `chainiq::run_one` needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Benchmark profile to simulate.
    pub bench: Bench,
    /// Instruction-queue design under test.
    pub iq: IqKind,
    /// Predictor configuration (Figure 2 bar).
    pub pred: PredictorConfig,
    /// Committed instructions to simulate.
    pub sample: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl RunSpec {
    /// A spec at the shared [`DEFAULT_SEED`].
    #[must_use]
    pub fn new(bench: Bench, iq: IqKind, pred: PredictorConfig, sample: u64) -> Self {
        RunSpec { bench, iq, pred, sample, seed: DEFAULT_SEED }
    }

    /// The same spec with a different workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Executes this spec (serially, on the calling thread).
    #[must_use]
    pub fn execute(&self) -> RunResult {
        self.execute_cached(None).0
    }

    /// Executes this spec through the checkpoint cache rooted at `cache`
    /// (`None` for a plain cold run). The warmup prefix is half the
    /// sample, so grid points sharing a (workload, configuration) pair —
    /// re-runs, CI double-runs, overlapping figures — skip half their
    /// simulation on a hit. Results are identical either way; see
    /// [`chainiq::run_one_ckpt`].
    #[must_use]
    pub fn execute_cached(&self, cache: Option<&Path>) -> (RunResult, CkptOutcome) {
        let plan = cache.map(|dir| CkptPlan { dir: dir.to_path_buf(), warmup: self.sample / 2 });
        chainiq::run_one_ckpt(
            self.bench.profile(),
            self.iq,
            self.pred.hmp(),
            self.pred.lrp(),
            self.sample,
            self.seed,
            plan.as_ref(),
        )
    }

    /// Short label for progress lines, e.g. `swim/seg512/comb`.
    #[must_use]
    pub fn label(&self) -> String {
        let iq = match self.iq {
            IqKind::Ideal(n) => format!("ideal{n}"),
            IqKind::Segmented(c) => format!("seg{}", c.capacity()),
            IqKind::Prescheduled(c) => format!("presched{}", c.capacity()),
            IqKind::Distance(c) => format!("dist{}", c.capacity()),
        };
        format!("{}/{}/{}", self.bench.name(), iq, self.pred.label())
    }
}

/// An ordered list of run specs, executed in one parallel fan-out.
///
/// `push`/`add` return the spec's **submission index**; [`Sweep::run`]
/// returns results at exactly those indices, so binaries record indices
/// while building the grid and render tables from the collected vector.
///
/// # Examples
///
/// ```no_run
/// use chainiq_bench::{ideal, PredictorConfig, RunSpec, Sweep};
/// use chainiq::Bench;
///
/// let mut sweep = Sweep::new();
/// let i = sweep.add(Bench::Swim, ideal(32), PredictorConfig::Base, 10_000);
/// let results = sweep.run();
/// println!("IPC {:.3}", results[i].ipc());
/// ```
#[derive(Debug, Default)]
pub struct Sweep {
    specs: Vec<RunSpec>,
}

impl Sweep {
    /// An empty sweep.
    #[must_use]
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Appends a spec, returning its submission index.
    pub fn push(&mut self, spec: RunSpec) -> usize {
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Appends a default-seed spec, returning its submission index.
    pub fn add(&mut self, bench: Bench, iq: IqKind, pred: PredictorConfig, sample: u64) -> usize {
        self.push(RunSpec::new(bench, iq, pred, sample))
    }

    /// Number of queued specs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the sweep is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The queued specs, in submission order.
    #[must_use]
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Executes the sweep on `CHAINIQ_JOBS` workers (default: hardware
    /// parallelism) and returns results in submission order. The
    /// checkpoint cache is consulted when `CHAINIQ_CKPT` enables it,
    /// rooted at the `CHAINIQ_CKPT_DIR` directory.
    #[must_use]
    pub fn run(self) -> Vec<RunResult> {
        let jobs = knob::jobs();
        self.run_with_jobs(jobs)
    }

    /// Executes the sweep on an explicit worker count (bypassing the
    /// `CHAINIQ_JOBS` knob — used by tests and callers that know better).
    /// The checkpoint cache still follows the environment knobs.
    #[must_use]
    pub fn run_with_jobs(self, jobs: usize) -> Vec<RunResult> {
        let cache = knob::ckpt_enabled().then(knob::ckpt_dir);
        self.run_with_jobs_cached(jobs, cache.as_deref()).0
    }

    /// Executes the sweep with an explicit worker count and cache root
    /// (`None` disables the cache regardless of the environment),
    /// returning results in submission order plus the cache accounting.
    /// Progress goes to stderr; hosts that need to own the progress
    /// stream use [`Sweep::run_with_jobs_cached_sink`].
    #[must_use]
    pub fn run_with_jobs_cached(
        self,
        jobs: usize,
        cache: Option<&Path>,
    ) -> (Vec<RunResult>, CkptTally) {
        self.run_with_jobs_cached_sink(jobs, cache, &StderrSink)
    }

    /// [`Sweep::run_with_jobs_cached`] with an injectable progress sink:
    /// every per-run progress line, the sweep summary, and the
    /// `ckpt cache:` accounting line go through `sink` instead of
    /// straight to stderr.
    ///
    /// When the cache is on and `CHAINIQ_CKPT_MAX_MB` sets a cap, the
    /// cache directory is trimmed to the cap after the sweep
    /// (least-recently-stored first; see `chainiq_ckpt::CacheDir`) and
    /// the eviction count is reported on the accounting line.
    #[must_use]
    pub fn run_with_jobs_cached_sink(
        self,
        jobs: usize,
        cache: Option<&Path>,
        sink: &dyn ProgressSink,
    ) -> (Vec<RunResult>, CkptTally) {
        let total = self.specs.len();
        let t0 = Instant::now();
        let mut done = 0usize;
        let outcomes = pool::run_indexed(
            &self.specs,
            jobs,
            |_, spec| spec.execute_cached(cache),
            |i, _| {
                done += 1;
                sink.line(&format!(
                    "  [{done:>3}/{total}] {:<36} ({:.1}s elapsed)",
                    self.specs[i].label(),
                    t0.elapsed().as_secs_f64()
                ));
            },
        );
        sink.line(&format!(
            "sweep: {total} runs in {:.1}s on {} worker{}",
            t0.elapsed().as_secs_f64(),
            jobs.max(1),
            if jobs == 1 { "" } else { "s" }
        ));
        let mut tally = CkptTally::default();
        let mut results = Vec::with_capacity(outcomes.len());
        for (result, outcome) in outcomes {
            tally.count(outcome);
            results.push(result);
        }
        if let Some(dir) = cache {
            let evicted = enforce_cache_cap(dir, knob::ckpt_max_mb(), sink);
            match evicted {
                0 => sink.line(&format!("ckpt cache: {tally} ({})", dir.display())),
                n => sink.line(&format!("ckpt cache: {tally}, {n} evicted ({})", dir.display())),
            }
        }
        (results, tally)
    }
}

/// Trims `dir` to `max_mb` mebibytes (no-op when uncapped), returning
/// how many entries were evicted. Failures are reported through the
/// sink and otherwise ignored: the cap is hygiene, not correctness.
fn enforce_cache_cap(dir: &Path, max_mb: Option<u64>, sink: &dyn ProgressSink) -> u64 {
    let Some(mb) = max_mb else {
        return 0;
    };
    match chainiq::ckpt::CacheDir::open(dir, Some(mb << 20), None) {
        Ok(mut cache) => match cache.enforce_and_persist() {
            Ok(()) => cache.tally().evicted,
            Err(e) => {
                sink.line(&format!("warning: ckpt cache cap enforcement failed: {e}"));
                cache.tally().evicted
            }
        },
        Err(e) => {
            sink.line(&format!("warning: ckpt cache cap enforcement failed: {e}"));
            0
        }
    }
}

/// Per-sweep checkpoint-cache accounting, reported on stderr so stdout
/// stays byte-identical whether the cache hit, missed, or was off.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CkptTally {
    /// Runs that restored a cached warmup prefix.
    pub hits: usize,
    /// Runs that simulated cold and saved an image.
    pub misses: usize,
    /// Runs that found a stale or corrupt image, discarded it, and
    /// restarted cold.
    pub rejected: usize,
    /// Cold runs whose image could not be written (cache unusable).
    pub save_failures: usize,
    /// Runs the cache did not apply to (no plan, or a degenerate warmup).
    pub disabled: usize,
}

impl CkptTally {
    fn count(&mut self, outcome: CkptOutcome) {
        match outcome {
            CkptOutcome::Hit => self.hits += 1,
            CkptOutcome::MissSaved => self.misses += 1,
            CkptOutcome::Rejected => self.rejected += 1,
            CkptOutcome::MissSaveFailed => self.save_failures += 1,
            CkptOutcome::Disabled => self.disabled += 1,
        }
    }

    /// Total runs accounted for.
    #[must_use]
    pub fn total(&self) -> usize {
        self.hits + self.misses + self.rejected + self.save_failures + self.disabled
    }
}

impl std::fmt::Display for CkptTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses", self.hits, self.misses)?;
        if self.rejected > 0 {
            write!(f, ", {} rejected", self.rejected)?;
        }
        if self.save_failures > 0 {
            write!(f, ", {} save failures", self.save_failures)?;
        }
        if self.disabled > 0 {
            write!(f, ", {} uncached", self.disabled)?;
        }
        Ok(())
    }
}

/// Generic fan-out for experiment grids whose points are *not* plain
/// `RunSpec`s (the SMT binary's thread mixes, for example): runs `f`
/// over `items` on `CHAINIQ_JOBS` workers with the same submission-order
/// collection and stderr progress reporting as [`Sweep::run`].
#[must_use]
pub fn sweep_map<J, R, F>(what: &str, items: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    sweep_map_with_sink(what, items, f, &StderrSink)
}

/// [`sweep_map`] with an injectable progress sink (see [`ProgressSink`]).
#[must_use]
pub fn sweep_map_with_sink<J, R, F>(
    what: &str,
    items: &[J],
    f: F,
    sink: &dyn ProgressSink,
) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let jobs = knob::jobs();
    let total = items.len();
    let t0 = Instant::now();
    let mut done = 0usize;
    let results = pool::run_indexed(
        items,
        jobs,
        |_, item| f(item),
        |_, _| {
            done += 1;
            sink.line(&format!(
                "  [{done:>3}/{total}] {what} ({:.1}s elapsed)",
                t0.elapsed().as_secs_f64()
            ));
        },
    );
    sink.line(&format!(
        "sweep: {total} {what} jobs in {:.1}s on {jobs} workers",
        t0.elapsed().as_secs_f64()
    ));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ideal, segmented};

    #[test]
    fn indices_are_submission_order() {
        let mut s = Sweep::new();
        let a = s.add(Bench::Swim, ideal(32), PredictorConfig::Base, 1000);
        let b = s.add(Bench::Gcc, segmented(64, Some(64)), PredictorConfig::Comb, 1000);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.specs()[a].bench, Bench::Swim);
        assert_eq!(s.specs()[b].pred, PredictorConfig::Comb);
    }

    #[test]
    fn labels_name_bench_queue_and_predictor() {
        let spec = RunSpec::new(Bench::Swim, ideal(512), PredictorConfig::Base, 1000);
        assert_eq!(spec.label(), "swim/ideal512/base");
        let spec = RunSpec::new(Bench::Gcc, segmented(512, Some(128)), PredictorConfig::Comb, 1000);
        assert_eq!(spec.label(), "gcc/seg512/comb");
    }

    #[test]
    fn with_seed_overrides_default() {
        let spec = RunSpec::new(Bench::Swim, ideal(32), PredictorConfig::Base, 1000);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.with_seed(7).seed, 7);
    }

    /// A scratch cache directory, removed on drop.
    struct ScratchCache(std::path::PathBuf);

    impl ScratchCache {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("chainiq-sweep-ckpt-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchCache(dir)
        }
    }

    impl Drop for ScratchCache {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_grid() -> Sweep {
        let mut s = Sweep::new();
        s.add(Bench::Swim, ideal(32), PredictorConfig::Base, 1_500);
        s.add(Bench::Gcc, segmented(64, Some(64)), PredictorConfig::Comb, 1_500);
        s.add(Bench::Twolf, ideal(64), PredictorConfig::Base, 1_500);
        s
    }

    fn digest(results: &[chainiq::RunResult]) -> String {
        results.iter().map(|r| format!("{:?} {:?}\n", r.stats, r.segmented)).collect()
    }

    #[test]
    fn cache_accounting_miss_then_hit() {
        let scratch = ScratchCache::new("accounting");
        let (cold, t0) = small_grid().run_with_jobs_cached(1, None);
        assert_eq!(t0, CkptTally { disabled: 3, ..CkptTally::default() });

        let (first, t1) = small_grid().run_with_jobs_cached(1, Some(&scratch.0));
        assert_eq!(t1, CkptTally { misses: 3, ..CkptTally::default() });
        assert_eq!(digest(&first), digest(&cold), "miss pass must match the uncached sweep");

        let (second, t2) = small_grid().run_with_jobs_cached(1, Some(&scratch.0));
        assert_eq!(t2, CkptTally { hits: 3, ..CkptTally::default() });
        assert_eq!(digest(&second), digest(&cold), "hit pass must match the uncached sweep");
        assert_eq!(t2.total(), 3);
    }

    /// Specs differing only in a configuration prefix — predictor hooks,
    /// queue geometry, or sample length — must never share a cache entry.
    #[test]
    fn cache_keys_separate_config_prefixes() {
        let scratch = ScratchCache::new("key-collision");
        let base = RunSpec::new(Bench::Swim, segmented(64, Some(64)), PredictorConfig::Base, 1_500);
        let variants = [
            base,
            RunSpec::new(Bench::Swim, segmented(64, Some(64)), PredictorConfig::Comb, 1_500),
            RunSpec::new(Bench::Swim, segmented(128, Some(64)), PredictorConfig::Base, 1_500),
            RunSpec::new(Bench::Swim, segmented(64, Some(64)), PredictorConfig::Base, 2_000),
        ];
        let mut sweep = Sweep::new();
        for v in variants {
            sweep.push(v);
        }
        let (_, tally) = sweep.run_with_jobs_cached(1, Some(&scratch.0));
        assert_eq!(
            tally,
            CkptTally { misses: 4, ..CkptTally::default() },
            "every config-prefix variant must get its own cache entry"
        );
        let entries = std::fs::read_dir(&scratch.0).unwrap().count();
        assert_eq!(entries, 4, "four distinct keys, four image files");
    }

    /// A sink that collects every line, for asserting progress routing.
    #[derive(Default)]
    struct CollectSink(std::sync::Mutex<Vec<String>>);

    impl ProgressSink for CollectSink {
        fn line(&self, line: &str) {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(line.to_string());
        }
    }

    /// The injectable sink receives every progress line — the per-run
    /// lines, the sweep summary, and the `ckpt cache:` accounting — so a
    /// daemon host can own the stream instead of sharing stderr.
    #[test]
    fn progress_routes_through_the_injected_sink() {
        let scratch = ScratchCache::new("sink");
        let sink = CollectSink::default();
        let (results, tally) = small_grid().run_with_jobs_cached_sink(1, Some(&scratch.0), &sink);
        assert_eq!(results.len(), 3);
        assert_eq!(tally.misses, 3);
        let lines = sink.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(lines.iter().filter(|l| l.contains("elapsed")).count(), 3);
        assert!(lines.iter().any(|l| l.starts_with("sweep: 3 runs")), "{lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("ckpt cache: 0 hits, 3 misses")), "{lines:?}");
    }

    #[test]
    fn sweep_map_routes_through_the_injected_sink() {
        let sink = CollectSink::default();
        let out = sweep_map_with_sink("doubling", &[1u64, 2, 3], |&x| x * 2, &sink);
        assert_eq!(out, vec![2, 4, 6]);
        let lines = sink.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(lines.iter().any(|l| l.contains("doubling")), "{lines:?}");
        assert!(lines.last().is_some_and(|l| l.starts_with("sweep: 3 doubling jobs")), "{lines:?}");
    }

    /// Concurrent workers sharing one cache directory: the atomic-write
    /// protocol must keep every reader seeing either a whole image or
    /// none, and results must stay byte-identical to a serial cold sweep.
    #[test]
    fn cache_is_safe_under_concurrent_workers() {
        let scratch = ScratchCache::new("concurrent");
        // Duplicate key coverage: pairs of specs share a cache entry, so
        // workers race to write and then to read the same files.
        let mut grid = Sweep::new();
        for _ in 0..2 {
            for spec in small_grid().specs() {
                grid.push(*spec);
            }
        }
        let serial = small_grid().run_with_jobs_cached(1, None).0;

        let (warm, t1) = {
            let mut g = Sweep::new();
            for spec in grid.specs() {
                g.push(*spec);
            }
            g.run_with_jobs_cached(4, Some(&scratch.0))
        };
        assert_eq!(t1.total(), 6);
        assert_eq!(t1.rejected, 0, "an atomic cache must never serve a torn image");
        assert_eq!(t1.save_failures, 0);

        let (hot, t2) = grid.run_with_jobs_cached(4, Some(&scratch.0));
        assert_eq!(t2, CkptTally { hits: 6, ..CkptTally::default() });

        for results in [&warm, &hot] {
            assert_eq!(digest(&results[..3]), digest(&serial));
            assert_eq!(digest(&results[3..]), digest(&serial));
        }
    }
}
