//! An in-repo scoped thread pool for embarrassingly parallel job lists.
//!
//! `std::thread` + `std::sync::mpsc` only, honoring the workspace's
//! zero-crates.io policy (`DESIGN.md` §7). Jobs are claimed from a shared
//! atomic cursor and results are collected **by submission index**, so
//! the output of [`run_indexed`] is independent of worker count and
//! completion order — parallelism changes wall-clock, never values.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `f` over every job, fanning out across `workers` OS threads, and
/// returns the results in submission order.
///
/// * `f(i, &jobs[i])` is called exactly once per job, on whichever worker
///   claims index `i` first.
/// * `progress(i, &result)` runs on the calling thread as each result
///   arrives (in completion order — use it for reporting only).
/// * `workers <= 1` (or a single job) degenerates to a plain serial loop
///   on the calling thread.
///
/// # Panics
///
/// If `f` panics on any job, the panic is propagated to the caller once
/// the remaining workers have drained the job list.
pub fn run_indexed<J, R, F, P>(jobs: &[J], workers: usize, f: F, mut progress: P) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    P: FnMut(usize, &R),
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let r = f(i, j);
                progress(i, &r);
                r
            })
            .collect();
    }

    let workers = workers.min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

    // If a job panics its worker dies (dropping its sender), the other
    // workers drain the remaining jobs, the receive loop ends when the
    // last sender drops, and `thread::scope` re-raises the panic on join.
    std::thread::scope(|s| {
        let f = &f;
        let next = &next;
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &jobs[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            progress(i, &r);
            slots[i] = Some(r);
        }
    });

    slots.into_iter().map(|r| r.expect("worker delivered every claimed job")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_keep_submission_order_under_out_of_order_completion() {
        // Earlier submissions sleep longer, so completion order is the
        // reverse of submission order whenever workers overlap.
        let jobs: Vec<u64> = (0..16).collect();
        let out = run_indexed(
            &jobs,
            4,
            |i, &j| {
                std::thread::sleep(Duration::from_millis(2 * (16 - i as u64)));
                j * 10
            },
            |_, _| {},
        );
        assert_eq!(out, (0..16).map(|j| j * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_path_matches_parallel_path() {
        let jobs: Vec<u32> = (0..9).collect();
        let serial = run_indexed(&jobs, 1, |i, &j| (i as u32) + j, |_, _| {});
        let parallel = run_indexed(&jobs, 3, |i, &j| (i as u32) + j, |_, _| {});
        assert_eq!(serial, parallel);
    }

    #[test]
    fn progress_sees_every_job_exactly_once() {
        let jobs: Vec<usize> = (0..20).collect();
        let mut seen = vec![0u32; jobs.len()];
        let _ = run_indexed(&jobs, 4, |_, &j| j, |i, _| seen[i] += 1);
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let jobs: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(
                &jobs,
                4,
                |_, &j| {
                    if j == 3 {
                        panic!("job 3 exploded");
                    }
                    j
                },
                |_, _| {},
            )
        }));
        assert!(caught.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out = run_indexed(&Vec::<u8>::new(), 4, |_, &j| j, |_, _| {});
        assert!(out.is_empty());
    }
}
