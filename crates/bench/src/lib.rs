//! Shared plumbing for the chainiq benchmark harness: experiment
//! configuration, result tables, and text rendering used by the binaries
//! that regenerate the paper's tables and figures.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod knob;
pub mod pool;
pub mod runner;
pub mod sweep;
pub mod table;

pub use knob::{jobs, knob};
pub use runner::{results_dir, BenchRunner, Measurement};
pub use sweep::{
    sweep_map, sweep_map_with_sink, CkptTally, NullSink, ProgressSink, RunSpec, StderrSink, Sweep,
};
pub use table::TextTable;

use chainiq::{Bench, IqKind, PrescheduleConfig, RunResult, SegmentedIqConfig};

/// The benchmarks Figure 2 / Table 2 report (gcc is omitted from
/// Figure 2 "for space reasons"; Figure 3 includes it).
pub const FIG2_BENCHES: [Bench; 7] = [
    Bench::Mgrid,
    Bench::Vortex,
    Bench::Twolf,
    Bench::Applu,
    Bench::Ammp,
    Bench::Swim,
    Bench::Equake,
];

/// Default committed-instruction sample per run. The paper simulates
/// 100M-instruction samples; the synthetic streams reach stable IPC
/// ratios far sooner (see `DESIGN.md` §5).
pub const DEFAULT_SAMPLE: u64 = 300_000;

/// Default RNG seed for all experiments (reproducibility).
pub const DEFAULT_SEED: u64 = 20020525; // the ISCA 2002 conference date

/// Reads the sample size from `CHAINIQ_SAMPLE` (committed instructions
/// per run), defaulting to [`DEFAULT_SAMPLE`]. The experiment binaries
/// honor this so CI can run them quickly. A set-but-unparsable value
/// warns on stderr and falls back to the default (see [`knob::knob`]).
#[must_use]
pub fn sample_size() -> u64 {
    knob::knob("CHAINIQ_SAMPLE", DEFAULT_SAMPLE)
}

/// The four predictor configurations of Figure 2, in bar order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorConfig {
    /// Chain per load, two-chain instructions tracked dynamically.
    Base,
    /// Hit/miss predictor only.
    Hmp,
    /// Left/right predictor only.
    Lrp,
    /// Both predictors ("comb" in the paper).
    Comb,
}

impl PredictorConfig {
    /// All four, in the paper's bar order.
    pub const ALL: [PredictorConfig; 4] =
        [PredictorConfig::Base, PredictorConfig::Hmp, PredictorConfig::Lrp, PredictorConfig::Comb];

    /// The paper's label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictorConfig::Base => "base",
            PredictorConfig::Hmp => "hmp",
            PredictorConfig::Lrp => "lrp",
            PredictorConfig::Comb => "comb",
        }
    }

    /// Whether the hit/miss predictor is on.
    #[must_use]
    pub fn hmp(self) -> bool {
        matches!(self, PredictorConfig::Hmp | PredictorConfig::Comb)
    }

    /// Whether the left/right predictor is on.
    #[must_use]
    pub fn lrp(self) -> bool {
        matches!(self, PredictorConfig::Lrp | PredictorConfig::Comb)
    }
}

/// Runs one benchmark on one queue design with the shared defaults,
/// serially on the calling thread. Grids of runs should go through
/// [`Sweep`] instead, which fans out across `CHAINIQ_JOBS` workers.
#[must_use]
pub fn run(bench: Bench, kind: IqKind, pred: PredictorConfig, sample: u64) -> RunResult {
    RunSpec::new(bench, kind, pred, sample).execute()
}

/// The segmented queue of the paper's main experiments: 32-entry
/// segments, all enhancements on, the given total size and chain count.
#[must_use]
pub fn segmented(entries: usize, chains: Option<usize>) -> IqKind {
    IqKind::Segmented(SegmentedIqConfig::paper(entries, chains))
}

/// The ideal queue at a given size.
#[must_use]
pub fn ideal(entries: usize) -> IqKind {
    IqKind::Ideal(entries)
}

/// The prescheduled queue with the paper's §6.3 line counts.
#[must_use]
pub fn prescheduled(lines: usize) -> IqKind {
    IqKind::Prescheduled(PrescheduleConfig::paper(lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_configs() {
        assert!(!PredictorConfig::Base.hmp() && !PredictorConfig::Base.lrp());
        assert!(PredictorConfig::Hmp.hmp() && !PredictorConfig::Hmp.lrp());
        assert!(!PredictorConfig::Lrp.hmp() && PredictorConfig::Lrp.lrp());
        assert!(PredictorConfig::Comb.hmp() && PredictorConfig::Comb.lrp());
    }

    #[test]
    fn kind_builders() {
        assert_eq!(segmented(512, Some(128)).capacity(), 512);
        assert_eq!(ideal(256).capacity(), 256);
        assert_eq!(prescheduled(24).capacity(), 320);
    }
}
