//! Minimal fixed-width text tables for experiment output.

/// A simple left-aligned text table renderer.
///
/// # Examples
///
/// ```
/// use chainiq_bench::TextTable;
///
/// let mut t = TextTable::new(&["bench", "ipc"]);
/// t.row(&["swim".to_string(), "1.23".to_string()]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("swim"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| (*s).to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
