//! A minimal wall-clock benchmark runner: the in-repo replacement for
//! `criterion`.
//!
//! Each scenario is timed as *warmup runs + k measured samples*; the
//! reported statistic is the **median** of the samples (robust against
//! one-off scheduling noise, cheap to compute, and honest about what a
//! handful of samples can support — no bootstrap theater). Results are
//! printed as a text table and written as JSON into the repo's
//! `results/` directory so runs can be diffed across commits.
//!
//! Environment knobs:
//!
//! * `CHAINIQ_BENCH_SAMPLES=k` — measured samples per scenario
//!   (default 5).
//! * `CHAINIQ_BENCH_WARMUP=n` — warmup runs per scenario (default 1).
//! * `CHAINIQ_BENCH_DIR=path` — where the JSON lands (default
//!   `results/` at the repo root).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use crate::knob::knob;
use crate::table::TextTable;

/// Timing summary of one benchmark scenario (all times nanoseconds).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Scenario name, unique within the suite.
    pub name: String,
    /// Median of the measured samples.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Every measured sample, in run order.
    pub samples_ns: Vec<u64>,
    /// Elements processed per run (throughput scenarios), if declared.
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the median time, for scenarios that
    /// declared a per-run element count.
    #[must_use]
    pub fn elems_per_sec(&self) -> Option<f64> {
        let e = self.elements?;
        (self.median_ns > 0).then(|| e as f64 * 1e9 / self.median_ns as f64)
    }
}

/// Collects scenario timings for one suite, then renders and persists
/// them on [`finish`](BenchRunner::finish).
///
/// # Examples
///
/// ```
/// use chainiq_bench::BenchRunner;
///
/// let mut r = BenchRunner::new("doc_example");
/// r.bench("sum", || (0..1000u64).sum::<u64>());
/// let rendered = r.render();
/// assert!(rendered.contains("sum"));
/// ```
#[derive(Debug)]
pub struct BenchRunner {
    suite: String,
    warmup: u32,
    samples: u32,
    results: Vec<Measurement>,
}

/// Median of an already-sorted sample list. For even counts this is the
/// mean of the two middle elements (rounded down to whole nanoseconds);
/// taking `sorted[len / 2]` — the *upper* middle — would bias every
/// even-k median upward.
fn median_ns(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        ((u128::from(sorted[n / 2 - 1]) + u128::from(sorted[n / 2])) / 2) as u64
    }
}

/// The default results directory, resolved at **runtime**: walk up from
/// the executable's location, then from the current directory, to the
/// nearest enclosing workspace root (a `Cargo.toml` declaring
/// `[workspace]`) and use its `results/`. Falls back to `./results`.
/// Compile-time `env!("CARGO_MANIFEST_DIR")` would bake the build host's
/// absolute path into the binary, which goes stale the moment the binary
/// is copied to another machine.
/// The directory benchmark artifacts land in: `CHAINIQ_BENCH_DIR` when
/// set, otherwise the runtime-discovered workspace `results/` directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    crate::knob::bench_dir().unwrap_or_else(default_results_dir)
}

fn default_results_dir() -> PathBuf {
    let starts = [std::env::current_exe().ok(), std::env::current_dir().ok()];
    for start in starts.iter().flatten() {
        for dir in start.ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.join("results");
                }
            }
        }
    }
    PathBuf::from("./results")
}

impl BenchRunner {
    /// Creates a runner for `suite` (the JSON file stem), honoring the
    /// `CHAINIQ_BENCH_*` environment knobs.
    #[must_use]
    pub fn new(suite: impl Into<String>) -> Self {
        BenchRunner {
            suite: suite.into(),
            warmup: knob("CHAINIQ_BENCH_WARMUP", 1u32),
            samples: knob("CHAINIQ_BENCH_SAMPLES", 5u32).max(1),
            results: Vec::new(),
        }
    }

    /// Times `f` (warmup + median-of-k) under `name` and records the
    /// result. The closure's return value is passed through
    /// [`std::hint::black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&mut self, name: impl Into<String>, f: impl FnMut() -> R) -> &Measurement {
        self.run(name.into(), None, f)
    }

    /// Like [`bench`](BenchRunner::bench), for scenarios that process
    /// `elements` items per run — the report adds elements/second.
    pub fn bench_throughput<R>(
        &mut self,
        name: impl Into<String>,
        elements: u64,
        f: impl FnMut() -> R,
    ) -> &Measurement {
        self.run(name.into(), Some(elements), f)
    }

    fn run<R>(
        &mut self,
        name: String,
        elements: Option<u64>,
        mut f: impl FnMut() -> R,
    ) -> &Measurement {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples_ns.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let m = Measurement {
            name,
            median_ns: median_ns(&sorted),
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("samples >= 1"),
            samples_ns,
            elements,
        };
        eprintln!("  {:<40} {:>12}  (min {})", m.name, fmt_ns(m.median_ns), fmt_ns(m.min_ns));
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// The measurements recorded so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Renders the suite as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["scenario", "median", "min", "max", "throughput"]);
        for m in &self.results {
            t.row(&[
                m.name.clone(),
                fmt_ns(m.median_ns),
                fmt_ns(m.min_ns),
                fmt_ns(m.max_ns),
                m.elems_per_sec()
                    .map_or_else(|| "-".to_string(), |e| format!("{:.2} Melem/s", e / 1e6)),
            ]);
        }
        t.render()
    }

    /// Serializes the suite as JSON (stable field order, no external
    /// serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"suite\": {},", json_str(&self.suite));
        let _ = writeln!(s, "  \"warmup\": {},", self.warmup);
        let _ = writeln!(s, "  \"samples_per_scenario\": {},", self.samples);
        s.push_str("  \"scenarios\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"elements\": {}, \"samples_ns\": {:?}}}",
                json_str(&m.name),
                m.median_ns,
                m.min_ns,
                m.max_ns,
                m.elements.map_or_else(|| "null".to_string(), |e| e.to_string()),
                m.samples_ns,
            );
            s.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Prints the text table and writes `results/<suite>.json`. Returns
    /// the JSON path on success; a write failure is reported on stderr,
    /// not fatal (benches still succeed on read-only checkouts).
    pub fn finish(self) -> Option<std::path::PathBuf> {
        println!("\n{} ({} samples, warmup {}):", self.suite, self.samples, self.warmup);
        println!("{}", self.render());
        let dir = results_dir();
        let path = dir.join(format!("{}.json", self.suite));
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, self.to_json())) {
            Ok(()) => {
                println!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_runner(suite: &str) -> BenchRunner {
        BenchRunner { suite: suite.into(), warmup: 0, samples: 3, results: Vec::new() }
    }

    #[test]
    fn records_median_min_max() {
        let mut r = quiet_runner("t");
        let m = r.bench("busy", || std::hint::black_box((0..10_000u64).sum::<u64>()));
        assert_eq!(m.samples_ns.len(), 3);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        let mut sorted = m.samples_ns.clone();
        sorted.sort_unstable();
        assert_eq!(m.median_ns, sorted[1]);
    }

    #[test]
    fn throughput_is_derived_from_median() {
        let mut r = quiet_runner("t");
        let m = r.bench_throughput("tp", 1_000_000, || {
            std::hint::black_box((0..100_000u64).sum::<u64>())
        });
        let eps = m.elems_per_sec().expect("elements declared");
        assert!(eps > 0.0);
        assert!((eps - 1_000_000.0 * 1e9 / m.median_ns as f64).abs() < 1.0);
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut r = quiet_runner("suite \"x\"");
        let _ = r.bench("a\\b", || 1u64);
        let j = r.to_json();
        assert!(j.contains(r#""suite": "suite \"x\"""#), "{j}");
        assert!(j.contains(r#""name": "a\\b""#), "{j}");
        assert!(j.contains("\"samples_ns\": ["), "{j}");
        assert!(j.contains("\"elements\": null"), "{j}");
    }

    #[test]
    fn render_lists_every_scenario() {
        let mut r = quiet_runner("t");
        let _ = r.bench("first", || 0u64);
        let _ = r.bench_throughput("second", 10, || 0u64);
        let s = r.render();
        assert!(s.contains("first") && s.contains("second"));
        assert!(s.contains("Melem/s"));
    }

    #[test]
    fn even_sample_median_averages_the_middle_pair() {
        // Regression: `sorted[len / 2]` reported 10 here — the upper
        // middle — biasing every even-k median upward.
        assert_eq!(median_ns(&[1, 2, 3, 10]), 2); // (2 + 3) / 2, floored
        assert_eq!(median_ns(&[4, 10]), 7);
        assert_eq!(median_ns(&[u64::MAX - 1, u64::MAX]), u64::MAX - 1); // no overflow
    }

    #[test]
    fn odd_sample_median_is_the_middle_element() {
        assert_eq!(median_ns(&[5]), 5);
        assert_eq!(median_ns(&[1, 7, 100]), 7);
    }

    #[test]
    fn default_results_dir_is_the_workspace_results() {
        // Under `cargo test` the walk-up from the test executable (in
        // `target/...`) must find the workspace root, not bake in a path.
        let dir = default_results_dir();
        assert_eq!(dir.file_name().and_then(|n| n.to_str()), Some("results"));
        let root = dir.parent().expect("results dir has a parent");
        let manifest =
            std::fs::read_to_string(root.join("Cargo.toml")).expect("workspace manifest");
        assert!(manifest.contains("[workspace]"));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(25_000), "25.0 us");
        assert_eq!(fmt_ns(25_000_000), "25.0 ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.00 s");
    }
}
