//! Centralized environment-knob parsing.
//!
//! Every `CHAINIQ_*` environment variable the harness reads goes through
//! [`knob`], so a typo (`CHAINIQ_SAMPLE=300k`, `CHAINIQ_BENCH_SAMPLES=abc`)
//! produces a stderr warning naming the rejected value and the default
//! that will be used instead — rather than silently running the wrong
//! experiment.

use std::fmt::Display;
use std::str::FromStr;

/// Reads `name` from the environment and parses it as `T`.
///
/// * Unset → `default`, silently (the normal case).
/// * Set and parsable → the parsed value.
/// * Set but unparsable (or not UTF-8) → `default`, with a warning on
///   stderr quoting the rejected value.
#[must_use]
pub fn knob<T: FromStr + Display>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: {name}={raw:?} is not a valid value; using default {default}");
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!("warning: {name}={raw:?} is not UTF-8; using default {default}");
            default
        }
    }
}

/// Results directory override: `CHAINIQ_BENCH_DIR`, or `None` when unset
/// (callers fall back to the runtime-discovered `results/` dir). Taken
/// as-is — any non-empty path is valid, so there is nothing to warn on.
#[must_use]
pub fn bench_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("CHAINIQ_BENCH_DIR").map(std::path::PathBuf::from)
}

/// Checkpoint-cache switch: `CHAINIQ_CKPT`. Accepts `1`/`true`/`on` and
/// `0`/`false`/`off`; anything else warns on stderr and keeps the
/// default (**off**, so plain runs never touch a cache directory and
/// behave exactly as before the cache existed).
#[must_use]
pub fn ckpt_enabled() -> bool {
    match std::env::var("CHAINIQ_CKPT") {
        Ok(raw) => match raw.trim() {
            "1" | "true" | "on" => true,
            "" | "0" | "false" | "off" => false,
            _ => {
                eprintln!("warning: CHAINIQ_CKPT={raw:?} is not a valid value; using default off");
                false
            }
        },
        Err(std::env::VarError::NotPresent) => false,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!("warning: CHAINIQ_CKPT={raw:?} is not UTF-8; using default off");
            false
        }
    }
}

/// Checkpoint-cache directory: `CHAINIQ_CKPT_DIR` when set, otherwise
/// `ckpt-cache/` inside the runtime-resolved results directory (so
/// cached warmup prefixes live beside the artifacts they accelerate).
/// Any non-empty path is valid, so there is nothing to warn on.
#[must_use]
pub fn ckpt_dir() -> std::path::PathBuf {
    std::env::var_os("CHAINIQ_CKPT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| crate::runner::results_dir().join("ckpt-cache"))
}

/// Source-revision label stamped into the perf-history artifact:
/// `CHAINIQ_GIT_REV` when set (CI passes `git rev-parse --short HEAD`),
/// otherwise `"unknown"`. The binaries never shell out to `git`
/// themselves — the label is an input, so sandboxed or exported trees
/// still produce well-formed history lines. Any non-empty string is
/// valid, so there is nothing to warn on.
#[must_use]
pub fn git_rev() -> String {
    match std::env::var("CHAINIQ_GIT_REV") {
        Ok(raw) if !raw.trim().is_empty() => raw.trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// Checkpoint/result cache size cap in mebibytes: `CHAINIQ_CKPT_MAX_MB`.
/// Unset or `0` means unlimited (today's behavior); a positive value
/// makes cache-owning code paths evict least-recently-used entries until
/// the directory fits (see `chainiq_ckpt::CacheDir`). Unparsable values
/// warn on stderr and fall back to unlimited.
#[must_use]
pub fn ckpt_max_mb() -> Option<u64> {
    match knob("CHAINIQ_CKPT_MAX_MB", 0u64) {
        0 => None,
        mb => Some(mb),
    }
}

/// Default TCP listen/connect address for `chainiq-serve` and its
/// clients: `CHAINIQ_SERVE_ADDR`. The value must parse as a socket
/// address (`host:port`); anything else warns on stderr and falls back
/// to the loopback default. Port `0` asks the OS for a free port (the
/// daemon prints — and can write to a file — the address it actually
/// bound).
#[must_use]
pub fn serve_addr() -> std::net::SocketAddr {
    let default = std::net::SocketAddr::from(([127, 0, 0, 1], 9417));
    knob("CHAINIQ_SERVE_ADDR", default)
}

/// Pending-job queue depth for `chainiq-serve`: `CHAINIQ_SERVE_QUEUE`.
/// A submission that would push the pending queue past this depth gets a
/// typed `Busy` response instead of buffering without bound. `0` is
/// rejected (with a warning) the same way a non-numeric value is.
#[must_use]
pub fn serve_queue_depth() -> usize {
    const DEFAULT: usize = 256;
    let d = knob("CHAINIQ_SERVE_QUEUE", DEFAULT);
    if d == 0 {
        eprintln!("warning: CHAINIQ_SERVE_QUEUE=0 is not a valid value; using default {DEFAULT}");
        DEFAULT
    } else {
        d
    }
}

/// Worker-thread count for the sweep executor: `CHAINIQ_JOBS`, defaulting
/// to [`std::thread::available_parallelism`]. `CHAINIQ_JOBS=0` is
/// rejected (with a warning) the same way a non-numeric value is.
#[must_use]
pub fn jobs() -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let j = knob("CHAINIQ_JOBS", auto);
    if j == 0 {
        eprintln!("warning: CHAINIQ_JOBS=0 is not a valid value; using default {auto}");
        auto
    } else {
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name so parallel test threads
    // cannot race on shared environment state.

    #[test]
    fn unset_uses_default() {
        assert_eq!(knob("CHAINIQ_TEST_KNOB_UNSET", 42u64), 42);
    }

    #[test]
    fn set_and_valid_parses() {
        std::env::set_var("CHAINIQ_TEST_KNOB_VALID", "7");
        assert_eq!(knob("CHAINIQ_TEST_KNOB_VALID", 42u64), 7);
    }

    #[test]
    fn malformed_falls_back_to_default() {
        // The regression the issue calls out: "300k" and "abc" used to be
        // swallowed by `.and_then(parse).unwrap_or(default)`.
        std::env::set_var("CHAINIQ_TEST_KNOB_BAD", "300k");
        assert_eq!(knob("CHAINIQ_TEST_KNOB_BAD", 300_000u64), 300_000);
        std::env::set_var("CHAINIQ_TEST_KNOB_BAD2", "abc");
        assert_eq!(knob("CHAINIQ_TEST_KNOB_BAD2", 5u32), 5);
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn git_rev_defaults_and_trims() {
        // Only this test touches CHAINIQ_GIT_REV, so no cross-test race.
        std::env::remove_var("CHAINIQ_GIT_REV");
        assert_eq!(git_rev(), "unknown");
        std::env::set_var("CHAINIQ_GIT_REV", "  1c5b71a \n");
        assert_eq!(git_rev(), "1c5b71a");
        std::env::set_var("CHAINIQ_GIT_REV", "   ");
        assert_eq!(git_rev(), "unknown", "blank labels fall back");
        std::env::remove_var("CHAINIQ_GIT_REV");
    }

    #[test]
    fn ckpt_max_mb_zero_and_garbage_mean_unlimited() {
        // Only this test touches CHAINIQ_CKPT_MAX_MB, so no cross-test race.
        std::env::remove_var("CHAINIQ_CKPT_MAX_MB");
        assert_eq!(ckpt_max_mb(), None);
        std::env::set_var("CHAINIQ_CKPT_MAX_MB", "0");
        assert_eq!(ckpt_max_mb(), None);
        std::env::set_var("CHAINIQ_CKPT_MAX_MB", "64");
        assert_eq!(ckpt_max_mb(), Some(64));
        std::env::set_var("CHAINIQ_CKPT_MAX_MB", "lots");
        assert_eq!(ckpt_max_mb(), None, "unparsable caps fall back to unlimited");
        std::env::remove_var("CHAINIQ_CKPT_MAX_MB");
    }

    #[test]
    fn serve_addr_parses_and_rejects_garbage() {
        // Only this test touches CHAINIQ_SERVE_ADDR, so no cross-test race.
        std::env::remove_var("CHAINIQ_SERVE_ADDR");
        let default = serve_addr();
        assert!(default.ip().is_loopback());
        std::env::set_var("CHAINIQ_SERVE_ADDR", "127.0.0.1:0");
        assert_eq!(serve_addr().port(), 0);
        std::env::set_var("CHAINIQ_SERVE_ADDR", "not-an-addr");
        assert_eq!(serve_addr(), default, "unparsable addresses fall back");
        std::env::remove_var("CHAINIQ_SERVE_ADDR");
    }

    #[test]
    fn serve_queue_depth_rejects_zero() {
        // Only this test touches CHAINIQ_SERVE_QUEUE, so no cross-test race.
        std::env::remove_var("CHAINIQ_SERVE_QUEUE");
        assert_eq!(serve_queue_depth(), 256);
        std::env::set_var("CHAINIQ_SERVE_QUEUE", "8");
        assert_eq!(serve_queue_depth(), 8);
        std::env::set_var("CHAINIQ_SERVE_QUEUE", "0");
        assert_eq!(serve_queue_depth(), 256, "0 is rejected like a parse failure");
        std::env::remove_var("CHAINIQ_SERVE_QUEUE");
    }

    #[test]
    fn ckpt_dir_honors_override() {
        // Only this test touches CHAINIQ_CKPT_DIR, so no cross-test race.
        std::env::set_var("CHAINIQ_CKPT_DIR", "/tmp/chainiq-knob-test-cache");
        assert_eq!(ckpt_dir(), std::path::PathBuf::from("/tmp/chainiq-knob-test-cache"));
        std::env::remove_var("CHAINIQ_CKPT_DIR");
        assert!(ckpt_dir().ends_with("ckpt-cache"), "default must be the results-side cache");
    }
}
