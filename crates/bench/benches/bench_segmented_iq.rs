//! Simulation cost of the queue structures themselves: time per
//! simulated cycle for each design at several sizes.
//!
//! (The paper's complexity argument is about *hardware* cycle time; this
//! bench tracks the *simulator's* cost so regressions in the hot loop
//! are caught. The hardware argument is encoded in the design: wakeup
//! and select touch one 32-entry segment, never the whole queue.)

use chainiq::core::{
    DispatchInfo, FuPool, InstTag, IssueQueue, SegmentedIq, SegmentedIqConfig, SrcOperand,
};
use chainiq::{ArchReg, IdealIq, OpClass, PrescheduleConfig, PrescheduledIq};
use chainiq_bench::BenchRunner;

const CYCLES: u64 = 2_000;

/// Runs `cycles` simulated cycles with a steady dispatch stream keeping
/// the queue about half full.
fn churn(iq: &mut dyn IssueQueue, cycles: u64) -> u64 {
    let mut fus = FuPool::table1();
    let mut next_tag = 0u64;
    let mut issued = 0u64;
    for now in 1..=cycles {
        iq.tick(now, false);
        for sel in iq.select_issue(now, &mut fus) {
            iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
            iq.on_writeback(sel.tag);
            issued += 1;
        }
        fus.next_cycle();
        for lane in 0..4u64 {
            if iq.occupancy() * 2 >= iq.capacity() {
                break;
            }
            let tag = InstTag(next_tag);
            // A short dependence chain every four instructions.
            let srcs: Vec<SrcOperand> = if next_tag.is_multiple_of(4) || next_tag == 0 {
                vec![]
            } else {
                vec![SrcOperand {
                    reg: ArchReg::int(((next_tag - 1) % 24) as u8),
                    producer: Some(InstTag(next_tag - 1)),
                    known_ready_at: None,
                }]
            };
            let op = if lane == 3 { OpClass::FpMul } else { OpClass::IntAlu };
            let info = DispatchInfo::compute(tag, op, ArchReg::int((next_tag % 24) as u8), &srcs);
            if iq.dispatch(now, info).is_ok() {
                next_tag += 1;
            }
        }
    }
    issued
}

fn main() {
    let mut r = BenchRunner::new("iq_cycle_cost");
    for entries in [64usize, 256, 512] {
        r.bench_throughput(format!("segmented/{entries}"), CYCLES, || {
            let mut iq = SegmentedIq::new(SegmentedIqConfig::paper(entries, Some(128)));
            churn(&mut iq, CYCLES)
        });
        r.bench_throughput(format!("ideal/{entries}"), CYCLES, || {
            let mut iq = IdealIq::new(entries);
            churn(&mut iq, CYCLES)
        });
    }
    r.bench_throughput("prescheduled-320", CYCLES, || {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(24));
        churn(&mut iq, CYCLES)
    });
    r.finish();
}
