//! Simulator cost of each §4 enhancement toggled individually (the IPC
//! effect of the same toggles is printed by `--bin ablate`).

use chainiq::{run_one, Bench, IqKind, SegmentedIqConfig};
use chainiq_bench::BenchRunner;

const INSTS: u64 = 8_000;

fn configs() -> Vec<(&'static str, SegmentedIqConfig)> {
    let base = SegmentedIqConfig::paper(256, Some(128));
    let mut no_pushdown = base;
    no_pushdown.pushdown = false;
    let mut no_bypass = base;
    no_bypass.bypass = false;
    let mut no_recovery = base;
    no_recovery.deadlock_recovery = false;
    let mut no_descent = base;
    no_descent.countdown_includes_descent = false;
    vec![
        ("all-on", base),
        ("no-pushdown", no_pushdown),
        ("no-bypass", no_bypass),
        ("no-deadlock-recovery", no_recovery),
        ("no-descent-countdown", no_descent),
    ]
}

fn main() {
    let mut r = BenchRunner::new("ablation_sim_cost");
    for (label, cfg) in configs() {
        r.bench_throughput(label, INSTS, || {
            run_one(Bench::Mgrid.profile(), IqKind::Segmented(cfg), true, true, INSTS, 7).ipc()
        });
    }
    r.finish();
}
