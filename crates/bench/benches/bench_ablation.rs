//! Simulator cost of each §4 enhancement toggled individually (the IPC
//! effect of the same toggles is printed by `--bin ablate`).

use chainiq::{run_one, Bench, IqKind, SegmentedIqConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const INSTS: u64 = 8_000;

fn configs() -> Vec<(&'static str, SegmentedIqConfig)> {
    let base = SegmentedIqConfig::paper(256, Some(128));
    let mut no_pushdown = base;
    no_pushdown.pushdown = false;
    let mut no_bypass = base;
    no_bypass.bypass = false;
    let mut no_recovery = base;
    no_recovery.deadlock_recovery = false;
    let mut no_descent = base;
    no_descent.countdown_includes_descent = false;
    vec![
        ("all-on", base),
        ("no-pushdown", no_pushdown),
        ("no-bypass", no_bypass),
        ("no-deadlock-recovery", no_recovery),
        ("no-descent-countdown", no_descent),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sim_cost");
    group.sample_size(10);
    for (label, cfg) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, &cfg| {
            b.iter(|| {
                black_box(
                    run_one(Bench::Mgrid.profile(), IqKind::Segmented(cfg), true, true, INSTS, 7)
                        .ipc(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
