//! Memory-hierarchy throughput: accesses/second for characteristic
//! address streams.

use chainiq::mem::{AccessKind, Hierarchy, MemConfig};
use chainiq_bench::BenchRunner;

const ACCESSES: u64 = 4096;

fn run_stream(addrs: &[u64]) -> u64 {
    let mut mem = Hierarchy::new(MemConfig::default());
    let mut done = 0u64;
    for (now, &a) in addrs.iter().enumerate() {
        if let Ok(out) = mem.access(now as u64, a, AccessKind::Read) {
            done = done.max(out.completes_at);
        }
    }
    done
}

fn main() {
    let mut r = BenchRunner::new("hierarchy");

    // Resident set: pure L1 hits after warmup.
    let hits: Vec<u64> = (0..ACCESSES).map(|i| (i * 8) % 4096).collect();
    r.bench_throughput("l1_hits", ACCESSES, || run_stream(&hits));

    // Line-stride sweep: every access a primary L2/memory miss.
    let misses: Vec<u64> = (0..ACCESSES).map(|i| i * 64 * 33).collect();
    r.bench_throughput("memory_misses", ACCESSES, || run_stream(&misses));

    // Word-stride sweep of a huge array: one primary miss plus seven
    // delayed hits per line (the swim pattern).
    let delayed: Vec<u64> = (0..ACCESSES).map(|i| i * 8 + (1 << 24)).collect();
    r.bench_throughput("delayed_hits", ACCESSES, || run_stream(&delayed));

    r.finish();
}
