//! Memory-hierarchy throughput: accesses/second for characteristic
//! address streams.

use chainiq::mem::{AccessKind, Hierarchy, MemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run_stream(addrs: &[u64]) -> u64 {
    let mut mem = Hierarchy::new(MemConfig::default());
    let mut done = 0u64;
    for (now, &a) in addrs.iter().enumerate() {
        if let Ok(out) = mem.access(now as u64, a, AccessKind::Read) {
            done = done.max(out.completes_at);
        }
    }
    done
}

fn bench_mem(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");

    // Resident set: pure L1 hits after warmup.
    let hits: Vec<u64> = (0..4096u64).map(|i| (i * 8) % 4096).collect();
    group.bench_function("l1_hits", |b| b.iter(|| black_box(run_stream(&hits))));

    // Line-stride sweep: every access a primary L2/memory miss.
    let misses: Vec<u64> = (0..4096u64).map(|i| i * 64 * 33).collect();
    group.bench_function("memory_misses", |b| b.iter(|| black_box(run_stream(&misses))));

    // Word-stride sweep of a huge array: one primary miss plus seven
    // delayed hits per line (the swim pattern).
    let delayed: Vec<u64> = (0..4096u64).map(|i| i * 8 + (1 << 24)).collect();
    group.bench_function("delayed_hits", |b| b.iter(|| black_box(run_stream(&delayed))));

    group.finish();
}

criterion_group!(benches, bench_mem);
criterion_main!(benches);
