//! End-to-end simulator throughput (simulated instructions per second)
//! for each queue design on one representative benchmark.

use chainiq::{run_one, Bench, IqKind, PrescheduleConfig, SegmentedIqConfig};
use chainiq_bench::BenchRunner;

const INSTS: u64 = 10_000;

fn main() {
    let mut r = BenchRunner::new("pipeline_e2e");
    let kinds: Vec<(&str, IqKind)> = vec![
        ("ideal-512", IqKind::Ideal(512)),
        ("segmented-512-128ch", IqKind::Segmented(SegmentedIqConfig::paper(512, Some(128)))),
        ("prescheduled-320", IqKind::Prescheduled(PrescheduleConfig::paper(24))),
    ];
    for (label, kind) in kinds {
        r.bench_throughput(label, INSTS, || {
            run_one(Bench::Equake.profile(), kind, true, true, INSTS, 7).ipc()
        });
    }
    r.finish();
}
