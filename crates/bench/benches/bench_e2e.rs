//! End-to-end simulator throughput (simulated instructions per second)
//! for each queue design on one representative benchmark.

use chainiq::{run_one, Bench, IqKind, PrescheduleConfig, SegmentedIqConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const INSTS: u64 = 10_000;

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_e2e");
    group.throughput(Throughput::Elements(INSTS));
    group.sample_size(10);

    let kinds: Vec<(&str, IqKind)> = vec![
        ("ideal-512", IqKind::Ideal(512)),
        ("segmented-512-128ch", IqKind::Segmented(SegmentedIqConfig::paper(512, Some(128)))),
        ("prescheduled-320", IqKind::Prescheduled(PrescheduleConfig::paper(24))),
    ];
    for (label, kind) in kinds {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                black_box(run_one(Bench::Equake.profile(), kind, true, true, INSTS, 7).ipc())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
