//! Workload-generator throughput: instructions/second per benchmark
//! profile.

use chainiq::{Bench, SyntheticWorkload};
use chainiq_bench::BenchRunner;

const INSTS: u64 = 20_000;

fn main() {
    let mut r = BenchRunner::new("workload_gen");
    for bench in [Bench::Swim, Bench::Gcc, Bench::Equake] {
        r.bench_throughput(bench.name(), INSTS, || {
            let w = SyntheticWorkload::from_profile(bench.profile(), 7);
            w.take(INSTS as usize).filter(|i| i.is_load()).count()
        });
    }
    r.finish();
}
