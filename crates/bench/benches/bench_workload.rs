//! Workload-generator throughput: instructions/second per benchmark
//! profile.

use chainiq::{Bench, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_gen");
    for bench in [Bench::Swim, Bench::Gcc, Bench::Equake] {
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &bench, |b, &bench| {
            b.iter(|| {
                let w = SyntheticWorkload::from_profile(bench.profile(), 7);
                black_box(w.take(20_000).filter(|i| i.is_load()).count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
