//! The idealized monolithic conventional queue.

use chainiq_core::{DispatchInfo, DispatchStall, FuPool, InstTag, IqStats, IssueQueue, IssuedInst};
use chainiq_isa::{Cycle, OpClass};

#[derive(Debug, Clone, Copy)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: InstTag,
    op: OpClass,
    ops: [Option<DataOperand>; 2],
    entered_at: Cycle,
}

impl Entry {
    fn ready(&self, now: Cycle) -> bool {
        self.ops.iter().flatten().all(|o| o.ready_at.map(|r| r <= now).unwrap_or(false))
    }
}

/// An idealized, single-cycle, monolithic instruction queue: full
/// associative wakeup over every slot, oldest-first select, no
/// complexity penalty regardless of size.
///
/// This is the paper's upper bound ("ideal IQ"). Its cycle time would in
/// reality grow quadratically with capacity [Palacharla et al.]; the
/// comparison in Figure 2/3 is IPC-only, with the clock advantage of the
/// segmented design argued separately.
#[derive(Debug, Clone)]
pub struct IdealIq {
    capacity: usize,
    entries: Vec<Entry>,
    stats: IqStats,
}

impl IdealIq {
    /// Creates an empty queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        IdealIq { capacity, entries: Vec::with_capacity(capacity), stats: IqStats::default() }
    }
}

impl IssueQueue for IdealIq {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn tick(&mut self, _now: Cycle, _execution_idle: bool) {
        self.stats.cycles += 1;
        self.stats.occupancy_accum += self.entries.len() as u64;
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        if self.entries.len() >= self.capacity {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        }
        let mut ops = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                }
            }
        }
        self.entries.push(Entry { tag: info.tag, op: info.op, ops, entered_at: now });
        self.stats.dispatched += 1;
        Ok(())
    }

    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        let mut ready: Vec<InstTag> = self
            .entries
            .iter()
            .filter(|e| e.entered_at < now && e.ready(now))
            .map(|e| e.tag)
            .collect();
        ready.sort();
        let mut issued = Vec::new();
        for tag in ready {
            if fus.slots_left() == 0 {
                break;
            }
            let idx = self.entries.iter().position(|e| e.tag == tag).expect("candidate present");
            if !fus.try_issue(now, self.entries[idx].op) {
                continue;
            }
            let e = self.entries.swap_remove(idx);
            issued.push(IssuedInst { tag: e.tag, op: e.op });
        }
        self.stats.issued += issued.len() as u64;
        issued
    }

    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        for e in &mut self.entries {
            for o in e.ops.iter_mut().flatten() {
                if o.producer == producer {
                    o.ready_at = Some(ready_at);
                }
            }
        }
    }

    fn flush(&mut self) {
        self.entries.clear();
    }

    fn stats(&self) -> IqStats {
        self.stats
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
        self.ops.pack(w);
        self.entered_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            ops: Pack::unpack(r)?,
            entered_at: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for IdealIq {
    const COMPONENT: &'static str = "baseline.ideal";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.capacity.pack(w);
        self.entries.pack(w);
        self.stats.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let capacity: usize = Pack::unpack(r)?;
        if capacity != self.capacity {
            return Err(corrupt("ideal IQ capacity differs from the running queue"));
        }
        let entries: Vec<Entry> = Pack::unpack(r)?;
        if entries.len() > capacity {
            return Err(corrupt("ideal IQ occupancy exceeds its capacity"));
        }
        let stats: IqStats = Pack::unpack(r)?;
        self.entries = entries;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_core::SrcOperand;
    use chainiq_isa::ArchReg;

    fn dep(reg: u8, producer: u64) -> SrcOperand {
        SrcOperand {
            reg: ArchReg::int(reg),
            producer: Some(InstTag(producer)),
            known_ready_at: None,
        }
    }

    #[test]
    fn issues_oldest_first_up_to_width() {
        let mut iq = IdealIq::new(64);
        for i in 0..12u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let mut fus = FuPool::table1();
        iq.tick(1, false);
        let issued = iq.select_issue(1, &mut fus);
        assert_eq!(issued.len(), 8, "issue width limits selection");
        let tags: Vec<u64> = issued.iter().map(|i| i.tag.0).collect();
        assert_eq!(tags, (0..8).collect::<Vec<_>>(), "oldest first");
    }

    #[test]
    fn waits_for_producer_announcement() {
        let mut iq = IdealIq::new(8);
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        iq.tick(1, false);
        assert!(iq.select_issue(1, &mut fus).is_empty());
        iq.announce_ready(InstTag(0), 5);
        iq.tick(4, false);
        assert!(iq.select_issue(4, &mut fus).is_empty(), "not ready until cycle 5");
        iq.tick(5, false);
        fus.next_cycle();
        assert_eq!(iq.select_issue(5, &mut fus).len(), 1);
    }

    #[test]
    fn full_queue_stalls_dispatch() {
        let mut iq = IdealIq::new(2);
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        assert_eq!(
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[])
            ),
            Err(DispatchStall::QueueFull)
        );
        assert_eq!(iq.stats().stalls_full, 1);
    }

    #[test]
    fn same_cycle_dispatch_cannot_issue() {
        let mut iq = IdealIq::new(8);
        iq.tick(1, false);
        iq.dispatch(1, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let mut fus = FuPool::table1();
        assert!(iq.select_issue(1, &mut fus).is_empty());
        iq.tick(2, false);
        assert_eq!(iq.select_issue(2, &mut fus).len(), 1);
    }

    #[test]
    fn known_ready_at_dispatch_is_honored() {
        let mut iq = IdealIq::new(8);
        let src = SrcOperand {
            reg: ArchReg::int(1),
            producer: Some(InstTag(0)),
            known_ready_at: Some(3),
        };
        iq.dispatch(0, DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(2), &[src]))
            .unwrap();
        let mut fus = FuPool::table1();
        iq.tick(2, false);
        assert!(iq.select_issue(2, &mut fus).is_empty());
        iq.tick(3, false);
        assert_eq!(iq.select_issue(3, &mut fus).len(), 1);
    }

    #[test]
    fn flush_clears() {
        let mut iq = IdealIq::new(8);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        iq.flush();
        assert!(iq.is_empty());
    }

    #[test]
    fn fu_conflict_skips_but_keeps_entry() {
        let mut iq = IdealIq::new(8);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::FpDiv, ArchReg::fp(1), &[]))
            .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(1), OpClass::FpDiv, ArchReg::fp(2), &[]))
            .unwrap();
        let mut fus = FuPool::new(1, 8); // one FP unit only
        iq.tick(1, false);
        assert_eq!(iq.select_issue(1, &mut fus).len(), 1, "one divider available");
        fus.next_cycle();
        iq.tick(2, false);
        assert!(iq.select_issue(2, &mut fus).is_empty(), "divider busy for 12 cycles");
        assert_eq!(iq.occupancy(), 1);
    }
}
