//! Canal & González's *distance* scheme (§2 of the paper).
//!
//! The third dependence-based queue family the paper discusses: like
//! prescheduling, a two-dimensional scheduling array whose rows are
//! future issue cycles — but the small fully-associative buffer sits
//! *before* the array. Instructions whose ready time cannot be predicted
//! at dispatch (operands produced by still-unresolved loads) wait in
//! that buffer until the time is known, so instructions are guaranteed
//! ready when they reach the oldest row. The cost is the opposite
//! failure mode to prescheduling's: a run of unpredictable instructions
//! fills the wait buffer and stalls dispatch.
//!
//! The paper argues (§6.3) that distance and prescheduling perform
//! similarly due to their structural similarity; this implementation
//! exists so that claim can be tested — see
//! `cargo run -p chainiq-bench --bin rivals`.

use std::collections::BTreeMap;

use chainiq_core::{DispatchInfo, DispatchStall, FuPool, InstTag, IqStats, IssueQueue, IssuedInst};
use chainiq_isa::{ArchReg, Cycle, OpClass, NUM_ARCH_REGS};

/// Geometry of a [`DistanceIq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceConfig {
    /// Fully-associative wait-buffer slots (before the array).
    pub wait_buffer_size: usize,
    /// Scheduling-array lines (the schedule horizon in cycles).
    pub num_lines: usize,
    /// Instruction slots per line.
    pub line_width: usize,
    /// Predicted load latency used when a load's consumers are scheduled.
    pub predicted_load_latency: u64,
}

impl DistanceConfig {
    /// A configuration size-comparable to [`PrescheduleConfig::paper`]:
    /// a 32-entry wait buffer plus `num_lines` 12-wide lines.
    ///
    /// [`PrescheduleConfig::paper`]: crate::PrescheduleConfig::paper
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` is zero.
    #[must_use]
    pub fn paper_sized(num_lines: usize) -> Self {
        assert!(num_lines > 0, "the scheduling array needs at least one line");
        DistanceConfig {
            wait_buffer_size: 32,
            num_lines,
            line_width: 12,
            predicted_load_latency: 4,
        }
    }

    /// Total instruction slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.wait_buffer_size + self.num_lines * self.line_width
    }
}

#[derive(Debug, Clone, Copy)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: InstTag,
    op: OpClass,
    ops: [Option<DataOperand>; 2],
    /// `None` while waiting in the buffer; `Some(row)` once scheduled.
    scheduled_at: Option<Cycle>,
}

impl Entry {
    fn known_ready(&self) -> Option<Cycle> {
        let mut ready = 0;
        for o in self.ops.iter().flatten() {
            ready = ready.max(o.ready_at?);
        }
        Some(ready)
    }
}

/// The distance-scheme queue: wait buffer → scheduling array → issue.
#[derive(Debug, Clone)]
pub struct DistanceIq {
    config: DistanceConfig,
    entries: Vec<Entry>,
    row_counts: BTreeMap<Cycle, u32>,
    /// Predicted absolute ready cycle per architectural register, when
    /// known (`None` = produced by a not-yet-resolved instruction).
    reg_ready: Vec<Option<Cycle>>,
    stats: IqStats,
    /// Dispatch stalls because the wait buffer was full.
    wait_buffer_stalls: u64,
}

impl DistanceIq {
    /// Creates an empty queue.
    #[must_use]
    pub fn new(config: DistanceConfig) -> Self {
        DistanceIq {
            config,
            entries: Vec::with_capacity(config.capacity()),
            row_counts: BTreeMap::new(),
            reg_ready: vec![Some(0); NUM_ARCH_REGS],
            stats: IqStats::default(),
            wait_buffer_stalls: 0,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DistanceConfig {
        &self.config
    }

    /// Dispatch stalls caused by a full wait buffer.
    #[must_use]
    pub fn wait_buffer_stalls(&self) -> u64 {
        self.wait_buffer_stalls
    }

    /// Instructions currently held in the wait buffer.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.entries.iter().filter(|e| e.scheduled_at.is_none()).count()
    }

    fn produce_latency(&self, op: OpClass) -> u64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            u64::from(op.exec_latency())
        }
    }

    /// Places one waiting entry into the array once its ready time is
    /// known. Returns false when every row from the target onward is
    /// full (the entry stays in the buffer and retries next cycle).
    fn try_schedule(&mut self, idx: usize, now: Cycle) -> bool {
        let Some(ready) = self.entries[idx].known_ready() else {
            return false;
        };
        let horizon = now + self.config.num_lines as u64;
        let first = ready.clamp(now + 1, horizon);
        let Some(slot) = (first..=horizon)
            .find(|c| self.row_counts.get(c).copied().unwrap_or(0) < self.config.line_width as u32)
        else {
            return false;
        };
        self.entries[idx].scheduled_at = Some(slot);
        *self.row_counts.entry(slot).or_default() += 1;
        true
    }
}

impl IssueQueue for DistanceIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn tick(&mut self, now: Cycle, _execution_idle: bool) {
        self.stats.cycles += 1;
        self.stats.occupancy_accum += self.entries.len() as u64;
        // Waiting entries whose ready time became known move into the
        // array (this is the associative part of the design).
        for idx in 0..self.entries.len() {
            if self.entries[idx].scheduled_at.is_none() {
                let _ = self.try_schedule(idx, now);
            }
        }
        // Prune empty row counters (rows in the past may still be
        // occupied by slipped entries, so prune by count, not by time).
        self.row_counts.retain(|_, v| *v > 0);
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        if self.entries.len() >= self.config.capacity() {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        }
        // Ready time predictable at dispatch?
        let mut known = true;
        let mut ops = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                let table = self.reg_ready[s.reg.index()];
                match s.producer {
                    None => {}
                    Some(producer) => {
                        let ready_at = s.known_ready_at.or(table);
                        if ready_at.is_none() {
                            known = false;
                        }
                        ops[i] = Some(DataOperand { producer, ready_at });
                    }
                }
            }
        }
        if !known && self.waiting() >= self.config.wait_buffer_size {
            self.wait_buffer_stalls += 1;
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        }

        let mut entry = Entry { tag: info.tag, op: info.op, ops, scheduled_at: None };
        let dest_ready = if known {
            // Try to place it directly in the array.
            let ready = entry.known_ready().unwrap_or(now);
            let horizon = now + self.config.num_lines as u64;
            let first = ready.clamp(now + 1, horizon);
            let slot = (first..=horizon).find(|c| {
                self.row_counts.get(c).copied().unwrap_or(0) < self.config.line_width as u32
            });
            match slot {
                Some(slot) => {
                    entry.scheduled_at = Some(slot);
                    *self.row_counts.entry(slot).or_default() += 1;
                    Some(slot + self.produce_latency(info.op))
                }
                None => {
                    if self.waiting() >= self.config.wait_buffer_size {
                        self.stats.stalls_full += 1;
                        return Err(DispatchStall::QueueFull);
                    }
                    None // spills into the wait buffer until rows free up
                }
            }
        } else {
            None
        };
        if let Some(dest) = info.dest {
            // Loads resolve their real latency later; consumers of an
            // unresolved value must wait in the buffer, which is the
            // scheme's defining behaviour.
            self.set_dest(dest, if info.op == OpClass::Load { None } else { dest_ready });
        }
        self.entries.push(entry);
        self.stats.dispatched += 1;
        Ok(())
    }

    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        // Issue directly from due rows, oldest tag first (instructions in
        // the array are ready by construction; a conservative readiness
        // check guards against table staleness).
        let mut due: Vec<InstTag> = self
            .entries
            .iter()
            .filter(|e| match e.scheduled_at {
                Some(s) => s <= now && e.known_ready().map(|r| r <= now).unwrap_or(false),
                None => false,
            })
            .map(|e| e.tag)
            .collect();
        due.sort();
        let mut issued = Vec::new();
        for tag in due {
            if fus.slots_left() == 0 {
                break;
            }
            let idx = self.entries.iter().position(|e| e.tag == tag).expect("candidate present");
            if !fus.try_issue(now, self.entries[idx].op) {
                continue;
            }
            let e = self.entries.swap_remove(idx);
            if let Some(s) = e.scheduled_at {
                if let Some(c) = self.row_counts.get_mut(&s) {
                    *c = c.saturating_sub(1);
                }
            }
            issued.push(IssuedInst { tag: e.tag, op: e.op });
        }
        self.stats.issued += issued.len() as u64;
        issued
    }

    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        for e in &mut self.entries {
            for o in e.ops.iter_mut().flatten() {
                if o.producer == producer {
                    o.ready_at = Some(ready_at);
                }
            }
        }
    }

    fn flush(&mut self) {
        self.entries.clear();
        self.row_counts.clear();
        self.reg_ready.fill(Some(0));
    }

    fn stats(&self) -> IqStats {
        self.stats
    }
}

impl DistanceIq {
    fn set_dest(&mut self, reg: ArchReg, ready: Option<Cycle>) {
        self.reg_ready[reg.index()] = ready;
    }
}

impl chainiq_ckpt::Pack for DistanceConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.wait_buffer_size.pack(w);
        self.num_lines.pack(w);
        self.line_width.pack(w);
        self.predicted_load_latency.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DistanceConfig {
            wait_buffer_size: Pack::unpack(r)?,
            num_lines: Pack::unpack(r)?,
            line_width: Pack::unpack(r)?,
            predicted_load_latency: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
        self.ops.pack(w);
        self.scheduled_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            ops: Pack::unpack(r)?,
            scheduled_at: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for DistanceIq {
    const COMPONENT: &'static str = "baseline.distance";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.config.pack(w);
        self.entries.pack(w);
        self.row_counts.pack(w);
        self.reg_ready.pack(w);
        self.stats.pack(w);
        self.wait_buffer_stalls.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let config: DistanceConfig = Pack::unpack(r)?;
        if config != self.config {
            return Err(corrupt("distance IQ config differs from the running queue"));
        }
        let entries: Vec<Entry> = Pack::unpack(r)?;
        let row_counts: BTreeMap<Cycle, u32> = Pack::unpack(r)?;
        let reg_ready: Vec<Option<Cycle>> = Pack::unpack(r)?;
        let stats: IqStats = Pack::unpack(r)?;
        let wait_buffer_stalls: u64 = Pack::unpack(r)?;
        if entries.len() > config.capacity() {
            return Err(corrupt("distance IQ occupancy exceeds its capacity"));
        }
        if reg_ready.len() != NUM_ARCH_REGS {
            return Err(corrupt("distance IQ register timing table has the wrong shape"));
        }
        // Row counters must track the scheduled entries exactly (a row
        // drained to zero may linger until the next tick prunes it).
        let mut recomputed: BTreeMap<Cycle, u32> = BTreeMap::new();
        for e in &entries {
            if let Some(row) = e.scheduled_at {
                *recomputed.entry(row).or_default() += 1;
            }
        }
        let rows_consistent = row_counts.iter().all(|(row, &n)| {
            let expect = recomputed.get(row).copied().unwrap_or(0);
            n == expect
        }) && recomputed.keys().all(|row| row_counts.contains_key(row));
        if !rows_consistent {
            return Err(corrupt("distance IQ row counters disagree with its entries"));
        }
        self.entries = entries;
        self.row_counts = row_counts;
        self.reg_ready = reg_ready;
        self.stats = stats;
        self.wait_buffer_stalls = wait_buffer_stalls;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_core::SrcOperand;

    fn ready_src(reg: u8) -> SrcOperand {
        SrcOperand::ready(ArchReg::int(reg))
    }

    fn dep(reg: u8, producer: u64) -> SrcOperand {
        SrcOperand {
            reg: ArchReg::int(reg),
            producer: Some(InstTag(producer)),
            known_ready_at: None,
        }
    }

    #[test]
    fn capacity() {
        assert_eq!(DistanceConfig::paper_sized(24).capacity(), 320);
    }

    #[test]
    fn predictable_instruction_issues_on_schedule() {
        let mut iq = DistanceIq::new(DistanceConfig::paper_sized(8));
        let mut fus = FuPool::table1();
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.waiting(), 0, "known-ready instructions go straight to the array");
        iq.tick(1, false);
        assert_eq!(iq.select_issue(1, &mut fus).len(), 1);
    }

    #[test]
    fn load_consumer_waits_in_buffer_until_resolution() {
        let mut iq = DistanceIq::new(DistanceConfig::paper_sized(8));
        let mut fus = FuPool::table1();
        // The load itself is predictable; its consumer is not (the load's
        // real latency is unknown until it resolves).
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
        )
        .unwrap();
        assert_eq!(iq.waiting(), 1, "the consumer waits for the load's real latency");
        // The load issues; pretend it missed and resolves at cycle 40.
        iq.tick(1, false);
        let issued = iq.select_issue(1, &mut fus);
        assert_eq!(issued.len(), 1);
        iq.announce_ready(InstTag(0), 40);
        iq.tick(2, false);
        assert_eq!(iq.waiting(), 0, "known ready time moves it into the array");
        // It must not issue before cycle 40.
        for now in 3..40 {
            fus.next_cycle();
            assert!(iq.select_issue(now, &mut fus).is_empty(), "not ready before 40");
            iq.tick(now, false);
        }
        fus.next_cycle();
        assert_eq!(iq.select_issue(40, &mut fus).len(), 1);
    }

    #[test]
    fn wait_buffer_exhaustion_stalls_dispatch() {
        let mut cfg = DistanceConfig::paper_sized(8);
        cfg.wait_buffer_size = 2;
        let mut iq = DistanceIq::new(cfg);
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        for i in 1..=2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
            )
            .unwrap();
        }
        let err = iq
            .dispatch(
                0,
                DispatchInfo::compute(InstTag(3), OpClass::IntAlu, ArchReg::int(3), &[dep(1, 0)]),
            )
            .unwrap_err();
        assert_eq!(err, DispatchStall::QueueFull);
        assert!(iq.wait_buffer_stalls() > 0);
    }

    #[test]
    fn flush_clears() {
        let mut iq = DistanceIq::new(DistanceConfig::paper_sized(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.flush();
        assert!(iq.is_empty());
    }
}
