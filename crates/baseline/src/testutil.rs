//! Shared differential-test harness for the baseline queues, plus the
//! restore-equals-continuous properties proving each queue's snapshot
//! captures every observable bit of scheduling state.

use chainiq_core::{DispatchInfo, DispatchStall, FuPool, InstTag, IqStats, IssueQueue, SrcOperand};
use chainiq_devtest::Gen;
use chainiq_isa::{ArchReg, OpClass};

#[derive(Debug, Clone)]
pub(crate) struct RandInst {
    op_pick: u8,
    dest: u8,
    src1: Option<u8>,
    src2: Option<u8>,
}

pub(crate) fn rand_inst(g: &mut Gen) -> RandInst {
    RandInst {
        op_pick: g.u8(0..6),
        dest: g.u8(0..24),
        src1: g.option(|g| g.u8(0..24)),
        src2: g.option(|g| g.u8(0..24)),
    }
}

fn op_of(pick: u8) -> OpClass {
    match pick {
        0 | 1 => OpClass::IntAlu,
        2 => OpClass::IntMul,
        3 => OpClass::FpAdd,
        4 => OpClass::FpMul,
        _ => OpClass::Load,
    }
}

/// Drives one queue through a fully deterministic script: random
/// dependence graph, every third load misses (fill + writeback 12 cycles
/// later). When `ckpt_at` is set, the queue is serialized at that cycle
/// and the run continues in a freshly constructed replacement restored
/// from the bytes — everything observable afterwards must be unchanged.
pub(crate) fn drive<Q>(
    iq: &mut Q,
    program: &[RandInst],
    limit: u64,
    ckpt_at: Option<u64>,
    fresh: impl Fn() -> Q,
) -> (Vec<(u64, InstTag)>, IqStats)
where
    Q: IssueQueue + chainiq_ckpt::Snapshot,
{
    let mut fus = FuPool::table1();
    let mut last_writer: [Option<InstTag>; 32] = [None; 32];
    let mut completed: Vec<bool> = vec![false; program.len()];
    let mut fills: Vec<(u64, InstTag)> = Vec::new();
    let mut next = 0usize;
    let mut schedule = Vec::new();

    for now in 1..=limit {
        if ckpt_at == Some(now) {
            let mut w = chainiq_ckpt::Writer::new();
            chainiq_ckpt::save_section(&mut w, iq);
            let bytes = w.into_bytes();
            let mut restored = fresh();
            let mut r = chainiq_ckpt::Reader::new(&bytes);
            // chainiq-analyze: allow(P1, cfg(test)-only helper; a failed restore IS the test failure)
            chainiq_ckpt::restore_section(&mut r, &mut restored).expect("snapshot must restore");
            *iq = restored;
        }
        let mut k = 0;
        while k < fills.len() {
            if fills[k].0 == now {
                let (_, tag) = fills.swap_remove(k);
                iq.on_load_fill(tag);
                iq.announce_ready(tag, now);
                iq.on_writeback(tag);
                completed[tag.0 as usize] = true;
            } else {
                k += 1;
            }
        }
        iq.tick(now, schedule.len() == program.len());
        for sel in iq.select_issue(now, &mut fus) {
            if sel.op == OpClass::Load && sel.tag.0 % 3 == 0 {
                iq.on_load_miss(sel.tag);
                iq.announce_ready(sel.tag, now + 12);
                fills.push((now + 12, sel.tag));
            } else {
                iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                iq.on_writeback(sel.tag);
                completed[sel.tag.0 as usize] = true;
            }
            schedule.push((now, sel.tag));
        }
        fus.next_cycle();
        for _ in 0..4 {
            if next >= program.len() {
                break;
            }
            let r = &program[next];
            let tag = InstTag(next as u64);
            let src = |s: Option<u8>| {
                s.map(|reg| SrcOperand {
                    reg: ArchReg::int(reg),
                    producer: last_writer[reg as usize].filter(|p| !completed[p.0 as usize]),
                    known_ready_at: if last_writer[reg as usize]
                        .map(|p| completed[p.0 as usize])
                        .unwrap_or(true)
                    {
                        Some(0)
                    } else {
                        None
                    },
                })
            };
            let info = DispatchInfo {
                tag,
                op: op_of(r.op_pick),
                dest: Some(ArchReg::int(r.dest)),
                srcs: [src(r.src1), src(r.src2)],
                predicted_hit: true,
                lrp_pick: None,
                thread: 0,
            };
            match iq.dispatch(now, info) {
                Ok(()) => {
                    last_writer[r.dest as usize] = Some(tag);
                    next += 1;
                }
                Err(DispatchStall::QueueFull | DispatchStall::NoChainWire) => break,
            }
        }
    }
    (schedule, iq.stats())
}

mod props {
    use super::*;
    use crate::{DistanceConfig, DistanceIq, IdealIq, PrescheduleConfig, PrescheduledIq};
    use chainiq_devtest::{prop_assert_eq, prop_check};

    prop_check! {
        /// Snapshot-at-N then restore into a freshly constructed ideal
        /// queue must be observationally identical to running straight
        /// through.
        fn ideal_restore_equals_continuous(g, cases = 25) {
            let program = g.vec(1..80, rand_inst);
            let capacity = [8, 16, 64, 512][g.usize(0..4)];
            let limit = 800;
            let ckpt_at = g.usize(1..800) as u64;
            let mut cont = IdealIq::new(capacity);
            let mut snap = IdealIq::new(capacity);
            let (sched_c, stats_c) =
                drive(&mut cont, &program, limit, None, || IdealIq::new(capacity));
            let (sched_s, stats_s) =
                drive(&mut snap, &program, limit, Some(ckpt_at), || IdealIq::new(capacity));
            prop_assert_eq!(sched_c, sched_s, "issue schedules diverge after restore");
            prop_assert_eq!(stats_c, stats_s, "final statistics diverge after restore");
            prop_assert_eq!(cont.occupancy(), snap.occupancy());
        }

        /// The same property for the distance queue, whose wait buffer
        /// and row counters must survive the round trip bit for bit.
        fn distance_restore_equals_continuous(g, cases = 25) {
            let program = g.vec(1..80, rand_inst);
            let cfg = DistanceConfig {
                wait_buffer_size: g.usize(1..40),
                num_lines: g.usize(1..12),
                line_width: [2, 4, 12][g.usize(0..3)],
                predicted_load_latency: 4,
            };
            let limit = 800;
            let ckpt_at = g.usize(1..800) as u64;
            let mut cont = DistanceIq::new(cfg);
            let mut snap = DistanceIq::new(cfg);
            let (sched_c, stats_c) = drive(&mut cont, &program, limit, None, || DistanceIq::new(cfg));
            let (sched_s, stats_s) =
                drive(&mut snap, &program, limit, Some(ckpt_at), || DistanceIq::new(cfg));
            prop_assert_eq!(sched_c, sched_s, "issue schedules diverge after restore");
            prop_assert_eq!(stats_c, stats_s, "final statistics diverge after restore");
            prop_assert_eq!(cont.wait_buffer_stalls(), snap.wait_buffer_stalls());
            prop_assert_eq!(cont.occupancy(), snap.occupancy());
        }

        /// The same property for the prescheduling queue, covering its
        /// array/buffer indexes, wakeup subscriptions and recirculation
        /// counters.
        fn preschedule_restore_equals_continuous(g, cases = 25) {
            let program = g.vec(1..80, rand_inst);
            let cfg = PrescheduleConfig {
                issue_buffer_size: g.usize(1..33),
                num_lines: g.usize(1..12),
                line_width: [2, 4, 12][g.usize(0..3)],
                predicted_load_latency: 4,
            };
            let limit = 800;
            let ckpt_at = g.usize(1..800) as u64;
            let mut cont = PrescheduledIq::new(cfg);
            let mut snap = PrescheduledIq::new(cfg);
            let (sched_c, stats_c) =
                drive(&mut cont, &program, limit, None, || PrescheduledIq::new(cfg));
            let (sched_s, stats_s) =
                drive(&mut snap, &program, limit, Some(ckpt_at), || PrescheduledIq::new(cfg));
            prop_assert_eq!(sched_c, sched_s, "issue schedules diverge after restore");
            prop_assert_eq!(stats_c, stats_s, "final statistics diverge after restore");
            prop_assert_eq!(cont.shift_stalls(), snap.shift_stalls());
            prop_assert_eq!(cont.recirculations(), snap.recirculations());
            prop_assert_eq!(cont.occupancy(), snap.occupancy());
        }
    }
}
