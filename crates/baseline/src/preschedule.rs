//! Michaud & Seznec's prescheduling instruction queue (§2, §6.3).

use std::collections::{BTreeMap, BTreeSet};

use chainiq_core::{DispatchInfo, DispatchStall, FuPool, InstTag, IqStats, IssueQueue, IssuedInst};
use chainiq_isa::{ArchReg, Cycle, OpClass, NUM_ARCH_REGS};

/// Geometry of a [`PrescheduledIq`]; defaults follow the paper's §6.3
/// configuration ("as suggested by the authors for best performance").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrescheduleConfig {
    /// Conventional issue-buffer slots (the paper uses 32).
    pub issue_buffer_size: usize,
    /// Scheduling-array lines (the schedule horizon in cycles).
    pub num_lines: usize,
    /// Instruction slots per line (the paper uses 12).
    pub line_width: usize,
    /// Predicted load latency used to build the schedule (hit assumed).
    pub predicted_load_latency: u64,
}

impl PrescheduleConfig {
    /// The paper's §6.3 data points: a 32-entry issue buffer plus 8, 24,
    /// 56 or 120 lines of 12 instructions (128, 320, 704 or 1472 total
    /// slots).
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` is zero.
    #[must_use]
    pub fn paper(num_lines: usize) -> Self {
        assert!(num_lines > 0, "the scheduling array needs at least one line");
        PrescheduleConfig {
            issue_buffer_size: 32,
            num_lines,
            line_width: 12,
            predicted_load_latency: 4,
        }
    }

    /// Total instruction slots (issue buffer + array).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.issue_buffer_size + self.num_lines * self.line_width
    }
}

#[derive(Debug, Clone, Copy)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    op: OpClass,
    ops: [Option<DataOperand>; 2],
    /// Predicted issue cycle: the row of the scheduling array this entry
    /// occupies, in absolute time.
    scheduled_at: Cycle,
    /// Cycle the entry moved into the issue buffer (`Cycle::MAX` while
    /// still in the array).
    entered_buffer_at: Cycle,
}

impl Entry {
    fn ready(&self, now: Cycle) -> bool {
        self.ops.iter().flatten().all(|o| o.ready_at.map(|r| r <= now).unwrap_or(false))
    }
}

/// The prescheduling queue: a two-dimensional scheduling array whose rows
/// correspond to future issue cycles, feeding a small fully-associative
/// issue buffer from its oldest row.
///
/// Dispatch places each instruction in the row matching its *predicted*
/// ready time, computed from a register timing table with predicted
/// (hit) load latencies. The schedule is quasi-static: it never adapts
/// after dispatch, so a mispredicted latency delivers instructions to
/// the issue buffer before they are ready, consuming its precious slots —
/// the failure mode the paper's segmented design avoids (§3, §6.3).
///
/// Rows are kept in absolute time: entries whose row has passed *slip*
/// (stay due) until buffer space appears, and a *recirculation* rule
/// evicts the youngest unready buffer entry when the buffer has filled
/// with unready instructions while an older due instruction waits in the
/// array — without it a mis-scheduled producer/consumer pair wedges the
/// queue permanently (Michaud & Seznec likewise recirculate on
/// mis-schedule).
#[derive(Debug, Clone)]
pub struct PrescheduledIq {
    config: PrescheduleConfig,
    entries: BTreeMap<InstTag, Entry>,
    /// Array-resident entries ordered `(scheduled_at, tag)` — the
    /// per-cycle due-scan reads a prefix range instead of rescanning the
    /// window (same indexed-wakeup treatment as the segmented kernel).
    array: BTreeSet<(Cycle, InstTag)>,
    /// Issue-buffer residents, in age (tag) order.
    buffer: BTreeSet<InstTag>,
    /// `(producer, consumer)` subscriptions: a completion announce is
    /// delivered only to the consumers waiting on that producer.
    waiters: BTreeSet<(InstTag, InstTag)>,
    /// Occupancy of each future row (`scheduled_at` -> entries).
    row_counts: BTreeMap<Cycle, u32>,
    /// Predicted absolute cycle each architectural register's value is
    /// ready.
    reg_ready: Vec<Cycle>,
    stats: IqStats,
    /// Cycles the array could not move a due row into the buffer.
    shift_stalls: u64,
    /// Buffer entries sent back to the array by the recirculation rule.
    recirculations: u64,
    /// Scratch buffers so the hot paths never allocate.
    scratch: Vec<(Cycle, InstTag)>,
    scratch_tags: Vec<InstTag>,
}

impl PrescheduledIq {
    /// Creates an empty prescheduling queue.
    #[must_use]
    pub fn new(config: PrescheduleConfig) -> Self {
        PrescheduledIq {
            config,
            entries: BTreeMap::new(),
            array: BTreeSet::new(),
            buffer: BTreeSet::new(),
            waiters: BTreeSet::new(),
            row_counts: BTreeMap::new(),
            reg_ready: vec![0; NUM_ARCH_REGS],
            stats: IqStats::default(),
            shift_stalls: 0,
            recirculations: 0,
            scratch: Vec::new(),
            scratch_tags: Vec::new(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PrescheduleConfig {
        &self.config
    }

    /// Cycles a due row could not (fully) drain into the issue buffer.
    #[must_use]
    pub fn shift_stalls(&self) -> u64 {
        self.shift_stalls
    }

    /// Buffer entries recirculated back into the array.
    #[must_use]
    pub fn recirculations(&self) -> u64 {
        self.recirculations
    }

    /// Instructions currently waiting in the issue buffer.
    #[must_use]
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Moves an array entry into the issue buffer.
    // chainiq-analyze: hot
    fn admit(&mut self, now: Cycle, sched: Cycle, tag: InstTag) {
        self.array.remove(&(sched, tag));
        self.buffer.insert(tag);
        if let Some(e) = self.entries.get_mut(&tag) {
            e.entered_buffer_at = now;
        }
        let count = self.row_counts.entry(sched).or_default();
        debug_assert!(*count > 0, "row count must track its entries");
        *count = count.saturating_sub(1);
    }

    /// Removes an issued (or squashed) entry from every index.
    // chainiq-analyze: hot
    fn remove_entry(&mut self, tag: InstTag) {
        if let Some(e) = self.entries.remove(&tag) {
            self.buffer.remove(&tag);
            self.array.remove(&(e.scheduled_at, tag));
            for o in e.ops.iter().flatten() {
                self.waiters.remove(&(o.producer, tag));
            }
        }
    }

    fn predicted_ready(&self, now: Cycle, info: &DispatchInfo) -> Cycle {
        let mut ready = now;
        for s in info.srcs.iter().flatten() {
            ready = ready.max(self.reg_ready[s.reg.index()]);
        }
        ready
    }

    fn produce_latency(&self, op: OpClass) -> u64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            u64::from(op.exec_latency())
        }
    }

    fn set_reg_ready(&mut self, reg: ArchReg, at: Cycle) {
        self.reg_ready[reg.index()] = at;
    }
}

impl IssueQueue for PrescheduledIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.entries.len()
    }

    // chainiq-analyze: hot
    fn tick(&mut self, now: Cycle, _execution_idle: bool) {
        self.stats.cycles += 1;
        self.stats.occupancy_accum += self.entries.len() as u64;

        // Move due array entries (oldest schedule first, then oldest age)
        // into the issue buffer while it has space. The array index is
        // ordered `(scheduled_at, tag)`, so the due set is a prefix range.
        let mut space = self.config.issue_buffer_size - self.buffer.len();
        let mut due = std::mem::take(&mut self.scratch);
        due.clear();
        due.extend(self.array.range(..=(now, InstTag(u64::MAX))).copied());
        let mut admitted = 0;
        let mut blocked = false;
        for &(sched, tag) in &due {
            if space == 0 {
                blocked = true;
                break;
            }
            self.admit(now, sched, tag);
            admitted += 1;
            space -= 1;
        }
        if blocked {
            self.shift_stalls += 1;
            // Recirculation: if nothing in the buffer is ready and an
            // older due instruction waits outside, swap it with the
            // youngest unready buffer entry so the machine cannot wedge.
            let oldest_due = due[admitted..].iter().copied().min_by_key(|&(_, tag)| tag);
            let buffer_has_ready = self.buffer.iter().any(|t| self.entries[t].ready(now));
            if let Some((due_sched, due_tag)) = oldest_due {
                let youngest_buf =
                    self.buffer.iter().rev().copied().find(|t| !self.entries[t].ready(now));
                if let Some(buf_tag) = youngest_buf {
                    if !buffer_has_ready && due_tag < buf_tag {
                        // Send the young unready entry back to the array,
                        // rescheduled one cycle out, and admit the older
                        // one.
                        self.buffer.remove(&buf_tag);
                        if let Some(e) = self.entries.get_mut(&buf_tag) {
                            e.entered_buffer_at = Cycle::MAX;
                            e.scheduled_at = now + 1;
                        }
                        self.array.insert((now + 1, buf_tag));
                        *self.row_counts.entry(now + 1).or_default() += 1;
                        self.admit(now, due_sched, due_tag);
                        self.recirculations += 1;
                    }
                }
            }
        }
        self.scratch = due;
        // Prune empty row counters (rows in the past may still be
        // occupied by slipped entries, so prune by count, not by time).
        self.row_counts.retain(|_, v| *v > 0);
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        if self.entries.len() >= self.config.capacity() {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        }
        // Predicted issue cycle, clamped to the schedule horizon, spilled
        // to the next row with space.
        let ready = self.predicted_ready(now, &info);
        let horizon = now + self.config.num_lines as u64;
        let first = ready.clamp(now + 1, horizon);
        let Some(slot) = (first..=horizon)
            .find(|c| self.row_counts.get(c).copied().unwrap_or(0) < self.config.line_width as u32)
        else {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        };

        let mut ops = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                    self.waiters.insert((producer, info.tag));
                }
            }
        }
        self.entries.insert(
            info.tag,
            Entry { op: info.op, ops, scheduled_at: slot, entered_buffer_at: Cycle::MAX },
        );
        self.array.insert((slot, info.tag));
        *self.row_counts.entry(slot).or_default() += 1;
        if let Some(dest) = info.dest {
            // Quasi-static: the placement row, not actual behaviour,
            // determines the predicted completion.
            self.set_reg_ready(dest, slot + self.produce_latency(info.op));
        }
        self.stats.dispatched += 1;
        Ok(())
    }

    // chainiq-analyze: hot
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        let mut ready = std::mem::take(&mut self.scratch_tags);
        ready.clear();
        ready.extend(self.buffer.iter().copied().filter(|t| {
            let e = &self.entries[t];
            e.entered_buffer_at < now && e.ready(now)
        }));
        let mut issued = Vec::with_capacity(ready.len());
        for &tag in &ready {
            if fus.slots_left() == 0 {
                break;
            }
            let op = self.entries[&tag].op;
            if !fus.try_issue(now, op) {
                continue;
            }
            self.remove_entry(tag);
            issued.push(IssuedInst { tag, op });
        }
        self.scratch_tags = ready;
        self.stats.issued += issued.len() as u64;
        issued
    }

    // chainiq-analyze: hot
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        let mut subs = std::mem::take(&mut self.scratch_tags);
        subs.clear();
        subs.extend(
            self.waiters
                .range((producer, InstTag(0))..=(producer, InstTag(u64::MAX)))
                .map(|&(_, consumer)| consumer),
        );
        for tag in &subs {
            if let Some(e) = self.entries.get_mut(tag) {
                for o in e.ops.iter_mut().flatten() {
                    if o.producer == producer {
                        o.ready_at = Some(ready_at);
                    }
                }
            }
        }
        self.scratch_tags = subs;
    }

    fn flush(&mut self) {
        self.entries.clear();
        self.array.clear();
        self.buffer.clear();
        self.waiters.clear();
        self.row_counts.clear();
        self.reg_ready.fill(0);
    }

    fn stats(&self) -> IqStats {
        self.stats
    }
}

impl chainiq_ckpt::Pack for PrescheduleConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.issue_buffer_size.pack(w);
        self.num_lines.pack(w);
        self.line_width.pack(w);
        self.predicted_load_latency.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(PrescheduleConfig {
            issue_buffer_size: Pack::unpack(r)?,
            num_lines: Pack::unpack(r)?,
            line_width: Pack::unpack(r)?,
            predicted_load_latency: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.op.pack(w);
        self.ops.pack(w);
        self.scheduled_at.pack(w);
        self.entered_buffer_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            op: Pack::unpack(r)?,
            ops: Pack::unpack(r)?,
            scheduled_at: Pack::unpack(r)?,
            entered_buffer_at: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for PrescheduledIq {
    const COMPONENT: &'static str = "baseline.preschedule";
    const VERSION: u16 = 1;

    /// The scratch buffers are transient (cleared before every use) and
    /// are therefore not serialized; restore leaves them empty.
    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.config.pack(w);
        self.entries.pack(w);
        self.array.pack(w);
        self.buffer.pack(w);
        self.waiters.pack(w);
        self.row_counts.pack(w);
        self.reg_ready.pack(w);
        self.stats.pack(w);
        self.shift_stalls.pack(w);
        self.recirculations.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let config: PrescheduleConfig = Pack::unpack(r)?;
        if config != self.config {
            return Err(corrupt("prescheduled IQ config differs from the running queue"));
        }
        let entries: BTreeMap<InstTag, Entry> = Pack::unpack(r)?;
        let array: BTreeSet<(Cycle, InstTag)> = Pack::unpack(r)?;
        let buffer: BTreeSet<InstTag> = Pack::unpack(r)?;
        let waiters: BTreeSet<(InstTag, InstTag)> = Pack::unpack(r)?;
        let row_counts: BTreeMap<Cycle, u32> = Pack::unpack(r)?;
        let reg_ready: Vec<Cycle> = Pack::unpack(r)?;
        let stats: IqStats = Pack::unpack(r)?;
        let shift_stalls: u64 = Pack::unpack(r)?;
        let recirculations: u64 = Pack::unpack(r)?;
        if entries.len() > config.capacity() {
            return Err(corrupt("prescheduled IQ occupancy exceeds its capacity"));
        }
        if reg_ready.len() != NUM_ARCH_REGS {
            return Err(corrupt("prescheduled IQ register timing table has the wrong shape"));
        }
        if buffer.len() > config.issue_buffer_size {
            return Err(corrupt("prescheduled IQ issue buffer overflows its size"));
        }
        // Every entry lives in exactly one of the two indexes: the array
        // (keyed by its scheduled row) or the issue buffer.
        if array.len() + buffer.len() != entries.len() {
            return Err(corrupt("prescheduled IQ indexes disagree with its entries"));
        }
        let array_consistent = array.iter().all(|&(sched, tag)| {
            entries
                .get(&tag)
                .map(|e| e.scheduled_at == sched && e.entered_buffer_at == Cycle::MAX)
                .unwrap_or(false)
        });
        if !array_consistent {
            return Err(corrupt("prescheduled IQ array index points at a missing entry"));
        }
        let buffer_consistent = buffer.iter().all(|tag| {
            entries.get(tag).map(|e| e.entered_buffer_at != Cycle::MAX).unwrap_or(false)
        });
        if !buffer_consistent {
            return Err(corrupt("prescheduled IQ buffer index points at a missing entry"));
        }
        let waiters_consistent = waiters.iter().all(|&(producer, consumer)| {
            entries
                .get(&consumer)
                .map(|e| e.ops.iter().flatten().any(|o| o.producer == producer))
                .unwrap_or(false)
        });
        if !waiters_consistent {
            return Err(corrupt("prescheduled IQ wakeup subscriptions disagree with its entries"));
        }
        // Row counters must track the array residents exactly (a row
        // drained to zero may linger until the next tick prunes it).
        let mut recomputed: BTreeMap<Cycle, u32> = BTreeMap::new();
        for &(sched, _) in &array {
            *recomputed.entry(sched).or_default() += 1;
        }
        let rows_consistent =
            row_counts.iter().all(|(row, &n)| n == recomputed.get(row).copied().unwrap_or(0))
                && recomputed.keys().all(|row| row_counts.contains_key(row));
        if !rows_consistent {
            return Err(corrupt("prescheduled IQ row counters disagree with its array"));
        }
        self.entries = entries;
        self.array = array;
        self.buffer = buffer;
        self.waiters = waiters;
        self.row_counts = row_counts;
        self.reg_ready = reg_ready;
        self.stats = stats;
        self.shift_stalls = shift_stalls;
        self.recirculations = recirculations;
        self.scratch.clear();
        self.scratch_tags.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_core::SrcOperand;

    fn ready_src(reg: u8) -> SrcOperand {
        SrcOperand::ready(ArchReg::int(reg))
    }

    fn dep(reg: u8, producer: u64) -> SrcOperand {
        SrcOperand {
            reg: ArchReg::int(reg),
            producer: Some(InstTag(producer)),
            known_ready_at: None,
        }
    }

    #[test]
    fn paper_capacities() {
        assert_eq!(PrescheduleConfig::paper(8).capacity(), 128);
        assert_eq!(PrescheduleConfig::paper(24).capacity(), 320);
        assert_eq!(PrescheduleConfig::paper(56).capacity(), 704);
        assert_eq!(PrescheduleConfig::paper(120).capacity(), 1472);
    }

    #[test]
    fn ready_instruction_reaches_buffer_then_issues() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let mut fus = FuPool::table1();
        iq.tick(1, false);
        assert_eq!(iq.buffer_len(), 1);
        assert!(iq.select_issue(1, &mut fus).is_empty(), "entered the buffer this cycle");
        iq.tick(2, false);
        assert_eq!(iq.select_issue(2, &mut fus).len(), 1);
    }

    #[test]
    fn dependent_is_scheduled_behind_its_producer() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
        )
        .unwrap();
        let load_row = iq.entries[&InstTag(0)].scheduled_at;
        let dep_row = iq.entries[&InstTag(1)].scheduled_at;
        assert_eq!(dep_row, load_row + 4, "consumer sits a predicted load latency behind");
    }

    #[test]
    fn mispredicted_latency_clogs_the_buffer() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        for i in 1..6u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
            )
            .unwrap();
        }
        let mut fus = FuPool::table1();
        let mut drained = 0;
        for now in 1..12 {
            iq.tick(now, false);
            drained += iq.select_issue(now, &mut fus).len();
            fus.next_cycle();
        }
        // The load issued (1); its dependents sit unready in the buffer.
        assert_eq!(drained, 1);
        assert_eq!(iq.buffer_len(), 5, "unready dependents occupy buffer slots");
    }

    #[test]
    fn full_row_spills_to_next() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        for i in 0..15u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let first_row = iq.entries[&InstTag(0)].scheduled_at;
        let spilled = iq.entries.values().filter(|e| e.scheduled_at == first_row + 1).count();
        assert_eq!(spilled, 3, "12 fit the first row, 3 spill");
    }

    #[test]
    fn capacity_exhaustion_stalls_dispatch() {
        let cfg = PrescheduleConfig {
            issue_buffer_size: 4,
            num_lines: 2,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        assert_eq!(
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[])
            ),
            Err(DispatchStall::QueueFull)
        );
    }

    #[test]
    fn full_buffer_stalls_the_drain() {
        let cfg = PrescheduleConfig {
            issue_buffer_size: 2,
            num_lines: 4,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        // Two unready instructions (producer never announced) fill the
        // buffer; a third must wait in the array.
        for i in 0..3u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 99)]),
            )
            .unwrap();
        }
        iq.tick(1, false);
        assert_eq!(iq.buffer_len(), 2);
        let before = iq.shift_stalls();
        iq.tick(2, false);
        assert!(iq.shift_stalls() > before);
        assert_eq!(iq.buffer_len(), 2);
    }

    #[test]
    fn recirculation_prevents_wedge_when_consumer_precedes_producer() {
        // Tiny buffer; consumers mis-scheduled ahead of their producer.
        let cfg = PrescheduleConfig {
            issue_buffer_size: 2,
            num_lines: 8,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        let mut fus = FuPool::table1();
        // Producer announced late; consumers placed early by the (bogus)
        // timing table state.
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(5), OpClass::IntAlu, ArchReg::int(3), &[dep(2, 9)]),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(6), OpClass::IntAlu, ArchReg::int(4), &[dep(2, 9)]),
        )
        .unwrap();
        // An *older* ready instruction arrives afterwards (e.g. replayed).
        iq.dispatch(0, DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(5), &[]))
            .unwrap();
        let mut issued = Vec::new();
        for now in 1..12 {
            iq.tick(now, false);
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
        }
        assert!(
            issued.iter().any(|i| i.tag == InstTag(1)),
            "the ready old instruction must get through the clogged buffer"
        );
        assert!(iq.recirculations() > 0);
    }

    #[test]
    fn flush_clears_all_state() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.flush();
        assert!(iq.is_empty());
    }
}
