//! Michaud & Seznec's prescheduling instruction queue (§2, §6.3).
//!
//! The v3 kernel rebuild mirrors the segmented queue's data layout:
//! entries live in a recycled slab indexed by a [`TagMap`]; the
//! scheduling array is a calendar [`Wheel`] of `(row, tag)` records plus
//! a sorted backlog of *slipped* rows (due rows the issue buffer had no
//! space for); per-producer wakeup subscriptions are slab-intrusive
//! linked lists; and row occupancy is a [`TagMap`] keyed by row cycle.
//! A cycle with nothing due costs one empty-bucket probe instead of an
//! ordered-tree range scan, and no path here allocates or rebalances.
// chainiq-analyze: hot-path

use chainiq_core::slab_list::{self, Link, ListHead, NIL};
use chainiq_core::{
    DispatchInfo, DispatchStall, FuPool, InstTag, IqStats, IssueQueue, IssuedInst, TagMap, Wheel,
};
use chainiq_isa::{ArchReg, Cycle, OpClass, NUM_ARCH_REGS};

/// Geometry of a [`PrescheduledIq`]; defaults follow the paper's §6.3
/// configuration ("as suggested by the authors for best performance").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrescheduleConfig {
    /// Conventional issue-buffer slots (the paper uses 32).
    pub issue_buffer_size: usize,
    /// Scheduling-array lines (the schedule horizon in cycles).
    pub num_lines: usize,
    /// Instruction slots per line (the paper uses 12).
    pub line_width: usize,
    /// Predicted load latency used to build the schedule (hit assumed).
    pub predicted_load_latency: u64,
}

impl PrescheduleConfig {
    /// The paper's §6.3 data points: a 32-entry issue buffer plus 8, 24,
    /// 56 or 120 lines of 12 instructions (128, 320, 704 or 1472 total
    /// slots).
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` is zero.
    #[must_use]
    pub fn paper(num_lines: usize) -> Self {
        assert!(num_lines > 0, "the scheduling array needs at least one line");
        PrescheduleConfig {
            issue_buffer_size: 32,
            num_lines,
            line_width: 12,
            predicted_load_latency: 4,
        }
    }

    /// Total instruction slots (issue buffer + array).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.issue_buffer_size + self.num_lines * self.line_width
    }
}

#[derive(Debug, Clone, Copy)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Whether the slot holds a queued instruction (dead slots are on the
    /// free list awaiting reuse).
    live: bool,
    tag: InstTag,
    op: OpClass,
    ops: [Option<DataOperand>; 2],
    /// Predicted issue cycle: the row of the scheduling array this entry
    /// occupies, in absolute time.
    scheduled_at: Cycle,
    /// Cycle the entry moved into the issue buffer (`Cycle::MAX` while
    /// still in the array).
    entered_buffer_at: Cycle,
}

impl Entry {
    fn ready(&self, now: Cycle) -> bool {
        self.ops.iter().flatten().all(|o| o.ready_at.map(|r| r <= now).unwrap_or(false))
    }
}

/// The prescheduling queue: a two-dimensional scheduling array whose rows
/// correspond to future issue cycles, feeding a small fully-associative
/// issue buffer from its oldest row.
///
/// Dispatch places each instruction in the row matching its *predicted*
/// ready time, computed from a register timing table with predicted
/// (hit) load latencies. The schedule is quasi-static: it never adapts
/// after dispatch, so a mispredicted latency delivers instructions to
/// the issue buffer before they are ready, consuming its precious slots —
/// the failure mode the paper's segmented design avoids (§3, §6.3).
///
/// Rows are kept in absolute time: future rows sit on a calendar wheel
/// keyed by row cycle, and entries whose row has passed *slip* into a
/// sorted backlog (`overdue`) until buffer space appears. A
/// *recirculation* rule evicts the youngest unready buffer entry when
/// the buffer has filled with unready instructions while an older due
/// instruction waits in the array — without it a mis-scheduled
/// producer/consumer pair wedges the queue permanently (Michaud & Seznec
/// likewise recirculate on mis-schedule).
#[derive(Debug, Clone)]
pub struct PrescheduledIq {
    config: PrescheduleConfig,
    /// Entry slab: contiguous storage addressed by the slot numbers the
    /// indexes carry. Slots are recycled LIFO.
    slots: Vec<Entry>,
    free_slots: Vec<u32>,
    /// Tag → slab slot for every queued instruction.
    by_tag: TagMap<u32>,
    /// Issue-buffer residents in ascending tag (age) order.
    buffer: Vec<InstTag>,
    /// Waiter-list heads per producer tag: the data operands waiting on
    /// that producer's wakeup announcement. Node id `2 * slot + k` is
    /// slot `slot`'s operand `k`; the links live in `wait_links`.
    waiter_heads: TagMap<ListHead>,
    wait_links: Vec<Link>,
    /// Array rows still in the future, as `(row, tag)` records keyed by
    /// row cycle. Records go stale only if the entry is squashed while
    /// array-resident; the drain revalidates against the live entry.
    due_wheel: Wheel<(Cycle, InstTag)>,
    /// Due records the issue buffer could not absorb, sorted by
    /// `(row, tag)` — the canonical admission order the old ordered-tree
    /// prefix scan produced.
    overdue: Vec<(Cycle, InstTag)>,
    /// Occupancy of each still-populated row (`scheduled_at` → entries).
    row_counts: TagMap<u32>,
    /// Predicted absolute cycle each architectural register's value is
    /// ready.
    reg_ready: Vec<Cycle>,
    /// The most recent `tick` cycle (drain clock for the wheel).
    last_now: Cycle,
    stats: IqStats,
    /// Cycles the array could not move a due row into the buffer.
    shift_stalls: u64,
    /// Buffer entries sent back to the array by the recirculation rule.
    recirculations: u64,
    /// Scratch buffers so the hot paths never allocate.
    drain_scratch: Vec<(Cycle, InstTag)>,
    scratch_tags: Vec<InstTag>,
}

impl PrescheduledIq {
    /// Creates an empty prescheduling queue.
    #[must_use]
    pub fn new(config: PrescheduleConfig) -> Self {
        PrescheduledIq {
            config,
            slots: Vec::new(),
            free_slots: Vec::new(),
            by_tag: TagMap::new(),
            buffer: Vec::new(),
            waiter_heads: TagMap::new(),
            wait_links: Vec::new(),
            // One revolution comfortably covers the schedule horizon, so
            // in-horizon records never wait out a lap.
            due_wheel: Wheel::new(2 * config.num_lines),
            overdue: Vec::new(),
            row_counts: TagMap::new(),
            reg_ready: vec![0; NUM_ARCH_REGS],
            last_now: 0,
            stats: IqStats::default(),
            shift_stalls: 0,
            recirculations: 0,
            drain_scratch: Vec::new(),
            scratch_tags: Vec::new(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PrescheduleConfig {
        &self.config
    }

    /// Cycles a due row could not (fully) drain into the issue buffer.
    #[must_use]
    pub fn shift_stalls(&self) -> u64 {
        self.shift_stalls
    }

    /// Buffer entries recirculated back into the array.
    #[must_use]
    pub fn recirculations(&self) -> u64 {
        self.recirculations
    }

    /// Instructions currently waiting in the issue buffer.
    #[must_use]
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// The live entry holding `tag`, if resident.
    fn entry(&self, tag: InstTag) -> Option<&Entry> {
        self.by_tag.get(tag.0).map(|slot| &self.slots[slot as usize])
    }

    /// Stores `entry` in a free slab slot and returns the slot number,
    /// growing the parallel waiter-link array alongside the slab.
    // chainiq-analyze: hot
    fn alloc_slot(&mut self, entry: Entry) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            debug_assert!(!self.slots[s as usize].live);
            self.slots[s as usize] = entry;
            s
        } else {
            self.slots.push(entry);
            self.wait_links.extend([Link::default(); 2]);
            (self.slots.len() - 1) as u32
        }
    }

    /// Moves an array entry (already removed from `overdue` by the
    /// caller) into the issue buffer.
    // chainiq-analyze: hot
    fn admit(&mut self, now: Cycle, sched: Cycle, tag: InstTag) {
        let Some(slot) = self.by_tag.get(tag.0) else {
            debug_assert!(false, "due record names a non-resident tag");
            return;
        };
        self.slots[slot as usize].entered_buffer_at = now;
        if let Err(pos) = self.buffer.binary_search(&tag) {
            self.buffer.insert(pos, tag);
        } else {
            debug_assert!(false, "tag is already buffered");
        }
        let count = self.row_counts.get(sched).unwrap_or(0);
        debug_assert!(count > 0, "row count must track its entries");
        if count <= 1 {
            self.row_counts.remove(sched);
        } else {
            self.row_counts.insert(sched, count - 1);
        }
    }

    /// Removes an issued (or squashed) entry from every index.
    // chainiq-analyze: hot
    fn remove_entry(&mut self, tag: InstTag) {
        let Some(slot) = self.by_tag.remove(tag.0) else { return };
        let s = slot as usize;
        debug_assert!(self.slots[s].live, "index points at a dead slot");
        for k in 0..2u32 {
            let Some(o) = self.slots[s].ops[k as usize] else { continue };
            if let Some(head) = self.waiter_heads.get_mut(o.producer.0) {
                slab_list::remove(head, &mut self.wait_links, 2 * slot + k);
                if head.is_empty() {
                    self.waiter_heads.remove(o.producer.0);
                }
            }
        }
        let e = &mut self.slots[s];
        e.live = false;
        if e.entered_buffer_at != Cycle::MAX {
            if let Ok(pos) = self.buffer.binary_search(&tag) {
                self.buffer.remove(pos);
            }
        } else {
            // Squashed while array-resident: drop any slipped record; a
            // wheel record goes stale and is dropped at drain time.
            self.overdue.retain(|&(_, t)| t != tag);
        }
        self.free_slots.push(slot);
    }

    fn predicted_ready(&self, now: Cycle, info: &DispatchInfo) -> Cycle {
        let mut ready = now;
        for s in info.srcs.iter().flatten() {
            ready = ready.max(self.reg_ready[s.reg.index()]);
        }
        ready
    }

    fn produce_latency(&self, op: OpClass) -> u64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            u64::from(op.exec_latency())
        }
    }

    fn set_reg_ready(&mut self, reg: ArchReg, at: Cycle) {
        self.reg_ready[reg.index()] = at;
    }
}

impl IssueQueue for PrescheduledIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.by_tag.len()
    }

    // chainiq-analyze: hot
    fn tick(&mut self, now: Cycle, _execution_idle: bool) {
        self.stats.cycles += 1;
        self.stats.occupancy_accum += self.by_tag.len() as u64;
        self.last_now = now;

        // Pull newly due rows off the wheel into the slipped backlog; the
        // sort restores the `(row, tag)` admission order the old ordered
        // tree gave (recirculated records can arrive tag-out-of-order
        // within a row).
        let mut drained = std::mem::take(&mut self.drain_scratch);
        drained.clear();
        self.due_wheel.drain_into(now, &mut drained);
        if !drained.is_empty() {
            for &(sched, tag) in &drained {
                let live = self.by_tag.get(tag.0).is_some_and(|slot| {
                    let e = &self.slots[slot as usize];
                    e.entered_buffer_at == Cycle::MAX && e.scheduled_at == sched
                });
                if live {
                    self.overdue.push((sched, tag));
                }
            }
            self.overdue.sort_unstable();
        }
        self.drain_scratch = drained;

        // Admit due entries (oldest row first, then oldest age) while the
        // buffer has space.
        let space = self.config.issue_buffer_size - self.buffer.len();
        let admitted = space.min(self.overdue.len());
        let blocked = self.overdue.len() > space;
        for i in 0..admitted {
            let (sched, tag) = self.overdue[i];
            self.admit(now, sched, tag);
        }
        self.overdue.drain(..admitted);
        if blocked {
            self.shift_stalls += 1;
            // Recirculation: if nothing in the buffer is ready and an
            // older due instruction waits outside, swap it with the
            // youngest unready buffer entry so the machine cannot wedge.
            let oldest_due =
                self.overdue.iter().copied().enumerate().min_by_key(|&(_, (_, tag))| tag);
            let buffer_has_ready =
                self.buffer.iter().any(|&t| self.entry(t).is_some_and(|e| e.ready(now)));
            if let Some((due_idx, (due_sched, due_tag))) = oldest_due {
                let youngest_buf = self
                    .buffer
                    .iter()
                    .rev()
                    .copied()
                    .find(|&t| self.entry(t).is_some_and(|e| !e.ready(now)));
                if let Some(buf_tag) = youngest_buf {
                    if !buffer_has_ready && due_tag < buf_tag {
                        // Send the young unready entry back to the array,
                        // rescheduled one cycle out, and admit the older
                        // one.
                        if let Ok(pos) = self.buffer.binary_search(&buf_tag) {
                            self.buffer.remove(pos);
                        }
                        let Some(slot) = self.by_tag.get(buf_tag.0) else { return };
                        let e = &mut self.slots[slot as usize];
                        e.entered_buffer_at = Cycle::MAX;
                        e.scheduled_at = now + 1;
                        self.due_wheel.schedule(now + 1, (now + 1, buf_tag));
                        let count = self.row_counts.get(now + 1).unwrap_or(0);
                        self.row_counts.insert(now + 1, count + 1);
                        self.overdue.remove(due_idx);
                        self.admit(now, due_sched, due_tag);
                        self.recirculations += 1;
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        if self.by_tag.len() >= self.config.capacity() {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        }
        // Predicted issue cycle, clamped to the schedule horizon, spilled
        // to the next row with space.
        let ready = self.predicted_ready(now, &info);
        let horizon = now + self.config.num_lines as u64;
        let first = ready.clamp(now + 1, horizon);
        let Some(row) = (first..=horizon)
            .find(|&c| self.row_counts.get(c).unwrap_or(0) < self.config.line_width as u32)
        else {
            self.stats.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        };

        let mut ops = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                }
            }
        }
        let slot = self.alloc_slot(Entry {
            live: true,
            tag: info.tag,
            op: info.op,
            ops,
            scheduled_at: row,
            entered_buffer_at: Cycle::MAX,
        });
        self.by_tag.insert(info.tag.0, slot);
        for (k, o) in ops.iter().enumerate() {
            if let Some(o) = o {
                let mut head = self.waiter_heads.get(o.producer.0).unwrap_or(ListHead::EMPTY);
                slab_list::push_back(&mut head, &mut self.wait_links, 2 * slot + k as u32);
                self.waiter_heads.insert(o.producer.0, head);
            }
        }
        self.due_wheel.schedule(row, (row, info.tag));
        let count = self.row_counts.get(row).unwrap_or(0);
        self.row_counts.insert(row, count + 1);
        if let Some(dest) = info.dest {
            // Quasi-static: the placement row, not actual behaviour,
            // determines the predicted completion.
            self.set_reg_ready(dest, row + self.produce_latency(info.op));
        }
        self.stats.dispatched += 1;
        Ok(())
    }

    // chainiq-analyze: hot
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        let mut ready = std::mem::take(&mut self.scratch_tags);
        ready.clear();
        ready.extend(
            self.buffer.iter().copied().filter(|&t| {
                self.entry(t).is_some_and(|e| e.entered_buffer_at < now && e.ready(now))
            }),
        );
        let mut issued = Vec::with_capacity(ready.len());
        for &tag in &ready {
            if fus.slots_left() == 0 {
                break;
            }
            let Some(op) = self.entry(tag).map(|e| e.op) else { continue };
            if !fus.try_issue(now, op) {
                continue;
            }
            self.remove_entry(tag);
            issued.push(IssuedInst { tag, op });
        }
        self.scratch_tags = ready;
        self.stats.issued += issued.len() as u64;
        issued
    }

    // chainiq-analyze: hot
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        let Some(head) = self.waiter_heads.get(producer.0) else { return };
        let mut cur = head.head;
        while cur != NIL {
            let (slot, k) = ((cur / 2) as usize, (cur % 2) as usize);
            if let Some(op) = self.slots[slot].ops[k].as_mut() {
                debug_assert_eq!(op.producer, producer, "waiter node on the wrong producer list");
                op.ready_at = Some(ready_at);
            }
            cur = self.wait_links[cur as usize].next;
        }
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.by_tag.clear();
        self.buffer.clear();
        self.waiter_heads.clear();
        // Drop the slab-parallel link storage with the slab itself.
        self.wait_links.clear();
        self.due_wheel.reset(self.last_now);
        self.overdue.clear();
        self.row_counts.clear();
        self.reg_ready.fill(0);
    }

    fn stats(&self) -> IqStats {
        self.stats
    }
}

#[cfg(test)]
impl PrescheduledIq {
    /// The scheduling-array row (absolute cycle) `tag` was placed in.
    fn sched_row(&self, tag: InstTag) -> Cycle {
        self.entry(tag).expect("tag is resident").scheduled_at
    }

    /// Queued instructions whose placement row is `row` (regardless of
    /// whether they have since moved into the issue buffer).
    fn row_population(&self, row: Cycle) -> usize {
        self.slots.iter().filter(|e| e.live && e.scheduled_at == row).count()
    }
}

impl chainiq_ckpt::Pack for PrescheduleConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.issue_buffer_size.pack(w);
        self.num_lines.pack(w);
        self.line_width.pack(w);
        self.predicted_load_latency.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(PrescheduleConfig {
            issue_buffer_size: Pack::unpack(r)?,
            num_lines: Pack::unpack(r)?,
            line_width: Pack::unpack(r)?,
            predicted_load_latency: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.live.pack(w);
        self.tag.pack(w);
        self.op.pack(w);
        self.ops.pack(w);
        self.scheduled_at.pack(w);
        self.entered_buffer_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            live: Pack::unpack(r)?,
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            ops: Pack::unpack(r)?,
            scheduled_at: Pack::unpack(r)?,
            entered_buffer_at: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for PrescheduledIq {
    const COMPONENT: &'static str = "baseline.preschedule";
    const VERSION: u16 = 2;

    /// V2 serializes *canonical* state only: the slab (whose entries
    /// carry residence, row and operand readiness), the free-list order
    /// (canonical: allocation pops it LIFO), the drain clock, the
    /// register timing table and the counters. Every index — the tag
    /// map, the buffer order, the waiter lists, the due wheel, the
    /// slipped backlog and the row counters — is a pure function of that
    /// state and is rebuilt on restore. Scratch buffers are transient
    /// (cleared before every use) and are not serialized.
    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.config.pack(w);
        self.slots.pack(w);
        self.free_slots.pack(w);
        self.last_now.pack(w);
        self.reg_ready.pack(w);
        self.stats.pack(w);
        self.shift_stalls.pack(w);
        self.recirculations.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let config: PrescheduleConfig = Pack::unpack(r)?;
        if config != self.config {
            return Err(corrupt("prescheduled IQ config differs from the running queue"));
        }
        let slots: Vec<Entry> = Pack::unpack(r)?;
        let free_slots: Vec<u32> = Pack::unpack(r)?;
        let last_now: Cycle = Pack::unpack(r)?;
        let reg_ready: Vec<Cycle> = Pack::unpack(r)?;
        let stats: IqStats = Pack::unpack(r)?;
        let shift_stalls: u64 = Pack::unpack(r)?;
        let recirculations: u64 = Pack::unpack(r)?;
        if reg_ready.len() != NUM_ARCH_REGS {
            return Err(corrupt("prescheduled IQ register timing table has the wrong shape"));
        }
        let live = slots.iter().filter(|e| e.live).count();
        if live > config.capacity() {
            return Err(corrupt("prescheduled IQ occupancy exceeds its capacity"));
        }
        // The free list must cover exactly the dead slots, each once.
        let mut on_free = vec![false; slots.len()];
        for &s in &free_slots {
            if slots.get(s as usize).is_none_or(|e| e.live) {
                return Err(corrupt("free list points at a live slab slot"));
            }
            if std::mem::replace(&mut on_free[s as usize], true) {
                return Err(corrupt("free list repeats a slab slot"));
            }
        }
        if slots.iter().zip(&on_free).any(|(e, &f)| !e.live && !f) {
            return Err(corrupt("dead slab slot missing from the free list"));
        }
        let horizon = last_now + config.num_lines as u64;
        let mut buffered = 0usize;
        for e in slots.iter().filter(|e| e.live) {
            if e.entered_buffer_at == Cycle::MAX {
                // Array-resident: recirculation reschedules at most one
                // cycle out, dispatch at most a horizon out.
                if e.scheduled_at > horizon {
                    return Err(corrupt("prescheduled IQ row lies beyond the schedule horizon"));
                }
            } else {
                if e.entered_buffer_at > last_now {
                    return Err(corrupt("prescheduled IQ buffer admission lies in the future"));
                }
                buffered += 1;
            }
        }
        if buffered > config.issue_buffer_size {
            return Err(corrupt("prescheduled IQ issue buffer overflows its size"));
        }

        // Rebuild every index from the slab. Buffer order and the
        // slipped backlog are tag-/row-sorted (canonical); waiter-list
        // and wheel-bucket orders are immaterial (announces are
        // idempotent and the backlog sort canonicalizes drain order), so
        // slot-order rebuilds are exact.
        self.by_tag = TagMap::new();
        self.buffer.clear();
        self.waiter_heads = TagMap::new();
        self.wait_links = vec![Link::default(); 2 * slots.len()];
        self.due_wheel.reset(last_now);
        self.overdue.clear();
        self.row_counts = TagMap::new();
        for (s, e) in slots.iter().enumerate().filter(|(_, e)| e.live) {
            let slot = s as u32;
            if self.by_tag.get(e.tag.0).is_some() {
                return Err(corrupt("prescheduled IQ slab repeats a tag"));
            }
            self.by_tag.insert(e.tag.0, slot);
            for (k, o) in e.ops.iter().enumerate() {
                if let Some(o) = o {
                    let mut head = self.waiter_heads.get(o.producer.0).unwrap_or(ListHead::EMPTY);
                    slab_list::push_back(&mut head, &mut self.wait_links, 2 * slot + k as u32);
                    self.waiter_heads.insert(o.producer.0, head);
                }
            }
            if e.entered_buffer_at != Cycle::MAX {
                self.buffer.push(e.tag);
            } else {
                if e.scheduled_at > last_now {
                    self.due_wheel.schedule(e.scheduled_at, (e.scheduled_at, e.tag));
                } else {
                    self.overdue.push((e.scheduled_at, e.tag));
                }
                let count = self.row_counts.get(e.scheduled_at).unwrap_or(0);
                self.row_counts.insert(e.scheduled_at, count + 1);
            }
        }
        self.buffer.sort_unstable();
        self.overdue.sort_unstable();
        self.slots = slots;
        self.free_slots = free_slots;
        self.last_now = last_now;
        self.reg_ready = reg_ready;
        self.stats = stats;
        self.shift_stalls = shift_stalls;
        self.recirculations = recirculations;
        self.drain_scratch.clear();
        self.scratch_tags.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_core::SrcOperand;

    fn ready_src(reg: u8) -> SrcOperand {
        SrcOperand::ready(ArchReg::int(reg))
    }

    fn dep(reg: u8, producer: u64) -> SrcOperand {
        SrcOperand {
            reg: ArchReg::int(reg),
            producer: Some(InstTag(producer)),
            known_ready_at: None,
        }
    }

    #[test]
    fn paper_capacities() {
        assert_eq!(PrescheduleConfig::paper(8).capacity(), 128);
        assert_eq!(PrescheduleConfig::paper(24).capacity(), 320);
        assert_eq!(PrescheduleConfig::paper(56).capacity(), 704);
        assert_eq!(PrescheduleConfig::paper(120).capacity(), 1472);
    }

    #[test]
    fn ready_instruction_reaches_buffer_then_issues() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let mut fus = FuPool::table1();
        iq.tick(1, false);
        assert_eq!(iq.buffer_len(), 1);
        assert!(iq.select_issue(1, &mut fus).is_empty(), "entered the buffer this cycle");
        iq.tick(2, false);
        assert_eq!(iq.select_issue(2, &mut fus).len(), 1);
    }

    #[test]
    fn dependent_is_scheduled_behind_its_producer() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
        )
        .unwrap();
        let load_row = iq.sched_row(InstTag(0));
        let dep_row = iq.sched_row(InstTag(1));
        assert_eq!(dep_row, load_row + 4, "consumer sits a predicted load latency behind");
    }

    #[test]
    fn mispredicted_latency_clogs_the_buffer() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        for i in 1..6u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 0)]),
            )
            .unwrap();
        }
        let mut fus = FuPool::table1();
        let mut drained = 0;
        for now in 1..12 {
            iq.tick(now, false);
            drained += iq.select_issue(now, &mut fus).len();
            fus.next_cycle();
        }
        // The load issued (1); its dependents sit unready in the buffer.
        assert_eq!(drained, 1);
        assert_eq!(iq.buffer_len(), 5, "unready dependents occupy buffer slots");
    }

    #[test]
    fn full_row_spills_to_next() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        for i in 0..15u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let first_row = iq.sched_row(InstTag(0));
        assert_eq!(iq.row_population(first_row + 1), 3, "12 fit the first row, 3 spill");
    }

    #[test]
    fn capacity_exhaustion_stalls_dispatch() {
        let cfg = PrescheduleConfig {
            issue_buffer_size: 4,
            num_lines: 2,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        assert_eq!(
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[])
            ),
            Err(DispatchStall::QueueFull)
        );
    }

    #[test]
    fn full_buffer_stalls_the_drain() {
        let cfg = PrescheduleConfig {
            issue_buffer_size: 2,
            num_lines: 4,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        // Two unready instructions (producer never announced) fill the
        // buffer; a third must wait in the array.
        for i in 0..3u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(2), &[dep(1, 99)]),
            )
            .unwrap();
        }
        iq.tick(1, false);
        assert_eq!(iq.buffer_len(), 2);
        let before = iq.shift_stalls();
        iq.tick(2, false);
        assert!(iq.shift_stalls() > before);
        assert_eq!(iq.buffer_len(), 2);
    }

    #[test]
    fn recirculation_prevents_wedge_when_consumer_precedes_producer() {
        // Tiny buffer; consumers mis-scheduled ahead of their producer.
        let cfg = PrescheduleConfig {
            issue_buffer_size: 2,
            num_lines: 8,
            line_width: 2,
            predicted_load_latency: 4,
        };
        let mut iq = PrescheduledIq::new(cfg);
        let mut fus = FuPool::table1();
        // Producer announced late; consumers placed early by the (bogus)
        // timing table state.
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(5), OpClass::IntAlu, ArchReg::int(3), &[dep(2, 9)]),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(6), OpClass::IntAlu, ArchReg::int(4), &[dep(2, 9)]),
        )
        .unwrap();
        // An *older* ready instruction arrives afterwards (e.g. replayed).
        iq.dispatch(0, DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(5), &[]))
            .unwrap();
        let mut issued = Vec::new();
        for now in 1..12 {
            iq.tick(now, false);
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
        }
        assert!(
            issued.iter().any(|i| i.tag == InstTag(1)),
            "the ready old instruction must get through the clogged buffer"
        );
        assert!(iq.recirculations() > 0);
    }

    #[test]
    fn flush_clears_all_state() {
        let mut iq = PrescheduledIq::new(PrescheduleConfig::paper(8));
        iq.dispatch(0, DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(9), false))
            .unwrap();
        iq.flush();
        assert!(iq.is_empty());
    }
}
