//! Baseline instruction-queue designs the paper compares against.
//!
//! * [`IdealIq`] — the idealized, monolithic, single-cycle conventional
//!   queue of §6: every slot is searched by wakeup/select each cycle with
//!   no penalty for size. Physically unrealizable at 512 entries (wakeup
//!   latency grows quadratically, §1), which is the paper's whole point —
//!   it is the performance *upper bound* the segmented queue is measured
//!   against.
//! * [`DistanceIq`] — Canal & González's *distance* scheme (§2): the
//!   same quasi-static array, but with the associative buffer *before*
//!   it, holding instructions whose ready time is not yet known.
//! * [`PrescheduledIq`] — Michaud & Seznec's prescheduling scheme
//!   (§2, §6.3): a quasi-static scheduling array of 12-instruction lines
//!   feeding a small conventional issue buffer. Instructions are placed
//!   at dispatch according to *predicted* operand timing and do not
//!   adapt afterwards; unpredictable latencies (cache misses) clog the
//!   issue buffer.
//!
//! Both implement [`chainiq_core::IssueQueue`], so the pipeline in
//! `chainiq-cpu` runs them interchangeably with the segmented design.
//!
//! # Examples
//!
//! ```
//! use chainiq_baseline::IdealIq;
//! use chainiq_core::{DispatchInfo, FuPool, InstTag, IssueQueue};
//! use chainiq_isa::{ArchReg, OpClass};
//!
//! let mut iq = IdealIq::new(512);
//! let mut fus = FuPool::table1();
//! iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
//!     .unwrap();
//! iq.tick(1, false);
//! assert_eq!(iq.select_issue(1, &mut fus).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod distance;
mod ideal;
mod preschedule;
#[cfg(test)]
mod testutil;

pub use distance::{DistanceConfig, DistanceIq};
pub use ideal::IdealIq;
pub use preschedule::{PrescheduleConfig, PrescheduledIq};
