//! Event-based dynamic-energy accounting for the instruction-queue
//! designs — the §7 question, quantified.
//!
//! The paper's §7: *"Copying an instruction from segment to segment
//! consumes more dynamic power than keeping the instruction in a single
//! storage location between dispatch and issue; whether the performance
//! benefit of the segmented IQ justifies this power consumption will
//! depend on the detailed design."* This crate makes that trade
//! explicit. Each design's activity counters (from the simulator's
//! statistics) are multiplied by per-event energy coefficients:
//!
//! * **entry writes** — dispatch into the queue, and (for the segmented
//!   design) every promotion/pushdown copies the entry into the next
//!   segment, the cost §7 worries about;
//! * **CAM search** — each cycle, the broadcast tags are compared
//!   against every *occupied searchable* row. This is where the
//!   segmented design wins: only segment 0 is searched associatively,
//!   while a monolithic queue searches its whole occupancy. Upper
//!   segments perform a cheaper local delay-compare;
//! * **selection** — per select operation over the searched rows;
//! * **chain wires** — per segment-hop of signal propagation;
//! * **idle clock** — per occupied-entry-cycle of latch clocking, which
//!   the §7 segment-granularity clock gating (tracked by
//!   `SegmentedStats::gateable_segment_frac`) can remove for empty
//!   segments.
//!
//! The coefficients are synthetic (relative magnitudes follow standard
//! CAM-vs-SRAM reasoning: an associative search of a row costs more than
//! a local compare, a copy costs a read plus a write); see `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use chainiq_power::EnergyModel;
//!
//! let model = EnergyModel::default();
//! // A monolithic 512-entry queue burning full-occupancy CAM searches:
//! let mono = model.monolithic_energy(512, 1_000_000, 400_000_000, 900_000);
//! assert!(mono.total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use chainiq_core::{IqStats, SegmentedStats};

/// Per-event energy coefficients in picojoules. Synthetic values; the
/// *ratios* carry the meaning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Writing one instruction into a queue entry (dispatch or
    /// segment-to-segment copy: read + write).
    pub entry_write_pj: f64,
    /// Comparing one broadcast tag set against one occupied CAM row.
    pub cam_row_search_pj: f64,
    /// One local delay-threshold compare (upper-segment promotion
    /// eligibility; no tag broadcast).
    pub delay_compare_pj: f64,
    /// One selection operation over a 32-entry arbiter tree.
    pub select_pj: f64,
    /// Driving a chain-wire signal across one segment for one cycle.
    pub wire_hop_pj: f64,
    /// Clocking one occupied entry's latches for one cycle.
    pub entry_clock_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            entry_write_pj: 6.0,
            cam_row_search_pj: 1.2,
            delay_compare_pj: 0.25,
            select_pj: 8.0,
            wire_hop_pj: 0.4,
            entry_clock_pj: 0.05,
        }
    }
}

/// Where the energy went, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dispatch writes.
    pub dispatch_pj: f64,
    /// Segment-to-segment copies (promotions + pushdowns + recoveries).
    pub copies_pj: f64,
    /// Associative wakeup searches.
    pub cam_pj: f64,
    /// Upper-segment delay compares.
    pub delay_compare_pj: f64,
    /// Selection trees.
    pub select_pj: f64,
    /// Chain-wire propagation.
    pub wires_pj: f64,
    /// Entry latch clocking.
    pub clock_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dispatch_pj
            + self.copies_pj
            + self.cam_pj
            + self.delay_compare_pj
            + self.select_pj
            + self.wires_pj
            + self.clock_pj
    }

    /// Energy per committed instruction.
    #[must_use]
    pub fn per_instruction_pj(&self, committed: u64) -> f64 {
        if committed == 0 {
            0.0
        } else {
            self.total_pj() / committed as f64
        }
    }
}

impl EnergyModel {
    /// Energy of a monolithic conventional queue: every occupied row is
    /// CAM-searched every cycle; one select per cycle; no copies.
    ///
    /// `occupancy_accum` is the sum of occupancy over cycles
    /// (`IqStats::occupancy_accum`).
    #[must_use]
    pub fn monolithic_energy(
        &self,
        _entries: usize,
        dispatched: u64,
        occupancy_accum: u64,
        cycles: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            dispatch_pj: self.entry_write_pj * dispatched as f64,
            copies_pj: 0.0,
            cam_pj: self.cam_row_search_pj * occupancy_accum as f64,
            delay_compare_pj: 0.0,
            select_pj: self.select_pj * cycles as f64,
            wires_pj: 0.0,
            clock_pj: self.entry_clock_pj * occupancy_accum as f64,
        }
    }

    /// Convenience wrapper over [`IqStats`].
    #[must_use]
    pub fn monolithic_energy_from_stats(&self, entries: usize, s: &IqStats) -> EnergyBreakdown {
        self.monolithic_energy(entries, s.dispatched, s.occupancy_accum, s.cycles)
    }

    /// Energy of the segmented queue: CAM search only over segment 0's
    /// occupancy; delay compares over the rest; copies for every
    /// promotion; per-segment selects (issue select in segment 0 plus a
    /// promotion select per non-empty boundary, approximated by the
    /// non-empty-segment count); chain-wire hops.
    #[must_use]
    pub fn segmented_energy(&self, s: &SegmentedStats) -> EnergyBreakdown {
        let copies = s.promotions + s.pushdowns + s.recovery_promotions + s.recovery_recycles;
        let upper_occ_accum = s.iq.occupancy_accum.saturating_sub(s.seg0_occupancy_accum);
        let total_segment_cycles = s.iq.cycles * s.num_segments as u64;
        let active_segment_cycles = total_segment_cycles.saturating_sub(s.empty_segment_cycles);
        EnergyBreakdown {
            dispatch_pj: self.entry_write_pj * s.iq.dispatched as f64,
            copies_pj: self.entry_write_pj * copies as f64,
            cam_pj: self.cam_row_search_pj * s.seg0_occupancy_accum as f64,
            delay_compare_pj: self.delay_compare_pj * upper_occ_accum as f64,
            select_pj: self.select_pj * active_segment_cycles as f64,
            wires_pj: self.wire_hop_pj * s.wire_signal_hops as f64,
            clock_pj: self.entry_clock_pj * s.iq.occupancy_accum as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_stats(cycles: u64) -> SegmentedStats {
        let mut s = SegmentedStats::default();
        s.iq.cycles = cycles;
        s.iq.dispatched = 1000;
        s.iq.occupancy_accum = cycles * 300;
        s.seg0_occupancy_accum = cycles * 20;
        s.num_segments = 16;
        s.empty_segment_cycles = cycles * 4;
        s.promotions = 12_000;
        s.wire_signal_hops = 5_000;
        s
    }

    #[test]
    fn totals_sum_components() {
        let m = EnergyModel::default();
        let b = m.segmented_energy(&seg_stats(1000));
        let manual = b.dispatch_pj
            + b.copies_pj
            + b.cam_pj
            + b.delay_compare_pj
            + b.select_pj
            + b.wires_pj
            + b.clock_pj;
        assert!((b.total_pj() - manual).abs() < 1e-9);
    }

    #[test]
    fn segmented_cam_energy_beats_monolithic_at_equal_occupancy() {
        // Same total occupancy, same cycles: the monolithic design
        // searches the full 300-entry occupancy, the segmented design
        // only segment 0's 20.
        let m = EnergyModel::default();
        let seg = m.segmented_energy(&seg_stats(1000));
        let mono = m.monolithic_energy(512, 1000, 1000 * 300, 1000);
        assert!(seg.cam_pj < 0.1 * mono.cam_pj, "{} vs {}", seg.cam_pj, mono.cam_pj);
    }

    #[test]
    fn copies_are_the_segmented_design_cost() {
        let m = EnergyModel::default();
        let seg = m.segmented_energy(&seg_stats(1000));
        assert!(seg.copies_pj > 0.0);
        let mono = m.monolithic_energy(512, 1000, 1000 * 300, 1000);
        assert_eq!(mono.copies_pj, 0.0);
    }

    #[test]
    fn per_instruction_handles_zero() {
        assert_eq!(EnergyBreakdown::default().per_instruction_pj(0), 0.0);
        let b = EnergyBreakdown { dispatch_pj: 100.0, ..EnergyBreakdown::default() };
        assert!((b.per_instruction_pj(50) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gating_reduces_select_energy() {
        let m = EnergyModel::default();
        let mut gated = seg_stats(1000);
        gated.empty_segment_cycles = 1000 * 12; // 12 of 16 segments gated
        let busy = m.segmented_energy(&seg_stats(1000));
        let idle = m.segmented_energy(&gated);
        assert!(idle.select_pj < busy.select_pj);
    }
}
