//! chainiq — a from-scratch reproduction of *"A Scalable Instruction
//! Queue Design Using Dependence Chains"* (Raasch, Binkert & Reinhardt,
//! ISCA 2002) as a Rust library.
//!
//! This facade re-exports the whole system:
//!
//! * [`core`] — the paper's contribution: the segmented instruction queue
//!   with dependence-chain scheduling ([`SegmentedIq`]).
//! * [`baseline`] — the comparison queues: the ideal monolithic CAM
//!   ([`IdealIq`]) and Michaud & Seznec's prescheduling array
//!   ([`PrescheduledIq`]).
//! * [`cpu`] — the Table 1 out-of-order core, generic over the queue
//!   ([`Pipeline`]), plus the experiment harness ([`run_one`]).
//! * [`mem`] — the event-driven L1/L2/DRAM hierarchy with MSHRs and
//!   delayed hits.
//! * [`predict`] — the hybrid branch predictor, the §4.4 hit/miss
//!   predictor and the §4.3 left/right operand predictor.
//! * [`workload`] — synthetic SPEC CPU2000 benchmark profiles
//!   ([`Bench`]).
//! * [`isa`] — the dynamic instruction representation.
//! * [`circuit`] — a Palacharla-style wakeup/select delay model that
//!   converts queue geometry into cycle time, completing the paper's
//!   clock-speed argument ([`Technology`], [`QueueGeometry`]).
//! * [`power`] — event-based dynamic-energy accounting for the §7
//!   power question ([`EnergyModel`]).
//! * [`ckpt`] — versioned, fingerprinted snapshot/restore of full
//!   machine state, powering the checkpoint-cached experiment path
//!   ([`run_one_ckpt`]).
//!
//! # Quickstart
//!
//! ```
//! use chainiq::{run_one, Bench, IqKind, SegmentedIqConfig};
//!
//! // A 128-entry segmented queue with 64 chain wires, HMP + LRP on.
//! let kind = IqKind::Segmented(SegmentedIqConfig::paper(128, Some(64)));
//! let result = run_one(Bench::Vortex.profile(), kind, true, true, 5_000, 42);
//! println!("{} IPC: {:.3}", Bench::Vortex, result.ipc());
//! # assert!(result.ipc() > 0.0);
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use chainiq_baseline as baseline;
pub use chainiq_circuit as circuit;
pub use chainiq_ckpt as ckpt;
pub use chainiq_core as core;
pub use chainiq_cpu as cpu;
pub use chainiq_isa as isa;
pub use chainiq_mem as mem;
pub use chainiq_power as power;
pub use chainiq_predict as predict;
pub use chainiq_workload as workload;

pub use chainiq_baseline::{
    DistanceConfig, DistanceIq, IdealIq, PrescheduleConfig, PrescheduledIq,
};
pub use chainiq_circuit::{QueueGeometry, Technology};
pub use chainiq_core::{
    DispatchInfo, DispatchStall, FuPool, InstTag, IssueQueue, SegmentedIq, SegmentedIqConfig,
    SegmentedStats, SrcOperand,
};
pub use chainiq_cpu::{
    run_one, run_one_ckpt, CkptOutcome, CkptPlan, IqKind, Pipeline, RunResult, SimConfig, SimStats,
    SmtPipeline,
};
pub use chainiq_isa::{ArchReg, Cycle, Inst, OpClass};
pub use chainiq_mem::{Hierarchy, MemConfig};
pub use chainiq_power::{EnergyBreakdown, EnergyModel};
pub use chainiq_predict::{HitMissPredictor, HybridBranchPredictor, LeftRightPredictor};
pub use chainiq_workload::{
    AddressSpace, Bench, KernelSpec, Phase, Profile, SyntheticWorkload, VecWorkload,
};
