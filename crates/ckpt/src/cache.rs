//! A size/entry-capped on-disk cache directory with deterministic
//! LRU-by-key eviction.
//!
//! Both caches the repo keeps on disk — the warmup checkpoint store
//! (`DESIGN.md` §10) and the `chainiq-serve` result store (§11) — grow
//! without bound if left alone, which a long-running daemon cannot
//! tolerate. [`CacheDir`] wraps a directory of opaque entry files with:
//!
//! * a byte cap and an entry cap (either optional);
//! * least-recently-used eviction, ties broken by key, so the eviction
//!   sequence is a deterministic function of the access sequence;
//! * a hit/miss/evicted tally for progress reporting and tests.
//!
//! Recency is tracked in memory per process and persisted to a sidecar
//! journal (one key per line, least recent first) on every store and
//! eviction, so a daemon restart resumes the same order. Reads touch the
//! in-memory order only — a hit must stay cheap — so read recency made
//! by other processes is not visible until they store or evict. Entry
//! files whose keys the journal does not know (e.g. written directly by
//! the sweep harness) are adopted in sorted-key order, which keeps the
//! fallback order deterministic too.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::CkptError;

/// Sidecar file holding the persisted recency order. Never treated as a
/// cache entry.
pub const JOURNAL: &str = "lru-journal.txt";

/// Hit/miss/evicted accounting for one [`CacheDir`] instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheTally {
    /// Successful [`CacheDir::load`] calls.
    pub hits: u64,
    /// [`CacheDir::load`] calls that found no entry.
    pub misses: u64,
    /// Entries deleted to satisfy the caps.
    pub evicted: u64,
}

impl std::fmt::Display for CacheTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses, {} evicted", self.hits, self.misses, self.evicted)
    }
}

/// One tracked entry: recency sequence number and on-disk size.
#[derive(Debug, Clone, Copy)]
struct Entry {
    seq: u64,
    bytes: u64,
}

/// A capped cache directory of opaque, atomically written entry files.
///
/// Keys are plain file names (no path separators, no leading dot). The
/// value bytes are whatever the caller frames — checkpoint images and
/// result images both carry their own fingerprints, so this layer treats
/// them as opaque.
#[derive(Debug)]
pub struct CacheDir {
    dir: PathBuf,
    max_bytes: Option<u64>,
    max_entries: Option<usize>,
    entries: BTreeMap<String, Entry>,
    next_seq: u64,
    tally: CacheTally,
}

impl CacheDir {
    /// Opens (creating if needed) the cache at `dir` with the given caps
    /// (`None` = unlimited). Reloads the persisted recency journal and
    /// adopts any untracked entry files in sorted-key order, oldest
    /// first, so two processes opening the same directory agree on the
    /// eviction order.
    ///
    /// # Errors
    /// [`CkptError::Io`] if the directory cannot be created or listed.
    pub fn open(
        dir: &Path,
        max_bytes: Option<u64>,
        max_entries: Option<usize>,
    ) -> Result<Self, CkptError> {
        std::fs::create_dir_all(dir)?;
        let mut on_disk: BTreeMap<String, u64> = BTreeMap::new();
        for ent in std::fs::read_dir(dir)? {
            let ent = ent?;
            let name = ent.file_name().to_string_lossy().into_owned();
            if !valid_key(&name) {
                continue; // journal, tmp files, subdirectories by name
            }
            if ent.file_type()?.is_file() {
                on_disk.insert(name, ent.metadata()?.len());
            }
        }
        let mut cache = CacheDir {
            dir: dir.to_path_buf(),
            max_bytes,
            max_entries,
            entries: BTreeMap::new(),
            next_seq: 0,
            tally: CacheTally::default(),
        };
        // Journal order first (least recent first), then unknown keys in
        // sorted order — deterministic whatever the directory held.
        let journal = std::fs::read_to_string(dir.join(JOURNAL)).unwrap_or_default();
        for key in journal.lines().map(str::trim).filter(|k| valid_key(k)) {
            if let Some(bytes) = on_disk.remove(key) {
                let seq = cache.bump();
                cache.entries.insert(key.to_string(), Entry { seq, bytes });
            }
        }
        for (key, bytes) in on_disk {
            let seq = cache.bump();
            cache.entries.insert(key, Entry { seq, bytes });
        }
        Ok(cache)
    }

    /// The directory this cache lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of tracked entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tracked payload bytes (entry files only, journal excluded).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// The hit/miss/evicted tally since this instance opened.
    #[must_use]
    pub fn tally(&self) -> CacheTally {
        self.tally
    }

    /// Loads the entry for `key`, bumping its recency on a hit. A
    /// missing entry is a miss; an unreadable entry file is reported as
    /// an I/O error (callers with a cold path treat it as a miss).
    ///
    /// # Errors
    /// [`CkptError::Io`] if the entry exists but cannot be read, or
    /// [`CkptError::Corrupt`] for an invalid key.
    pub fn load(&mut self, key: &str) -> Result<Option<Vec<u8>>, CkptError> {
        check_key(key)?;
        if !self.entries.contains_key(key) {
            self.tally.misses += 1;
            return Ok(None);
        }
        match std::fs::read(self.dir.join(key)) {
            Ok(bytes) => {
                let seq = self.bump();
                if let Some(e) = self.entries.get_mut(key) {
                    e.seq = seq;
                }
                self.tally.hits += 1;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Evicted or removed behind our back: forget it.
                self.entries.remove(key);
                self.tally.misses += 1;
                Ok(None)
            }
            Err(e) => Err(CkptError::Io(e)),
        }
    }

    /// Stores `bytes` under `key` (atomic write, last writer wins),
    /// marks it most recent, enforces the caps, and persists the
    /// recency journal.
    ///
    /// The most-recently-touched entry is never evicted, so a store
    /// always survives its own cap enforcement even when one entry
    /// exceeds the byte cap on its own.
    ///
    /// # Errors
    /// [`CkptError::Io`] on any filesystem failure, or
    /// [`CkptError::Corrupt`] for an invalid key.
    pub fn store(&mut self, key: &str, bytes: &[u8]) -> Result<(), CkptError> {
        check_key(key)?;
        crate::write_image_atomic(&self.dir.join(key), bytes)?;
        let seq = self.bump();
        self.entries.insert(key.to_string(), Entry { seq, bytes: bytes.len() as u64 });
        self.enforce()?;
        self.persist_order()
    }

    /// Enforces the byte and entry caps by evicting least-recent entries
    /// (ties broken by key) and persists the journal. Called by
    /// [`CacheDir::store`]; also useful standalone after adopting files
    /// written directly by the sweep harness.
    ///
    /// # Errors
    /// [`CkptError::Io`] if an eviction or the journal write fails.
    pub fn enforce_and_persist(&mut self) -> Result<(), CkptError> {
        self.enforce()?;
        self.persist_order()
    }

    fn enforce(&mut self) -> Result<(), CkptError> {
        loop {
            let over_bytes = self.max_bytes.is_some_and(|cap| self.total_bytes() > cap);
            let over_entries = self.max_entries.is_some_and(|cap| self.entries.len() > cap);
            if !(over_bytes || over_entries) || self.entries.len() <= 1 {
                return Ok(());
            }
            // Victim: lowest (seq, key). BTreeMap iteration makes the key
            // tiebreak deterministic.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.seq, (*k).clone()))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                return Ok(());
            };
            match std::fs::remove_file(self.dir.join(&victim)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(CkptError::Io(e)),
            }
            self.entries.remove(&victim);
            self.tally.evicted += 1;
        }
    }

    /// Writes the recency journal (least recent first) atomically.
    fn persist_order(&self) -> Result<(), CkptError> {
        let mut order: Vec<(&u64, &String)> =
            self.entries.iter().map(|(k, e)| (&e.seq, k)).collect();
        order.sort();
        let mut body = String::new();
        for (_, key) in order {
            body.push_str(key);
            body.push('\n');
        }
        crate::write_image_atomic(&self.dir.join(JOURNAL), body.as_bytes())
    }

    fn bump(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }
}

/// Whether `name` names a cache entry (not the journal, a temp file, or
/// anything path-shaped).
fn valid_key(name: &str) -> bool {
    !name.is_empty()
        && name != JOURNAL
        && !name.starts_with('.')
        && !name.contains('/')
        && !name.contains('\\')
}

fn check_key(key: &str) -> Result<(), CkptError> {
    if valid_key(key) {
        Ok(())
    } else {
        Err(CkptError::Corrupt { context: format!("invalid cache key {key:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("chainiq-cachedir-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn keys(c: &CacheDir) -> Vec<String> {
        c.entries.keys().cloned().collect()
    }

    #[test]
    fn store_load_roundtrip_and_tally() {
        let s = Scratch::new("roundtrip");
        let mut c = CacheDir::open(&s.0, None, None).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.load("a.bin").unwrap(), None);
        c.store("a.bin", b"alpha").unwrap();
        assert_eq!(c.load("a.bin").unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(c.tally(), CacheTally { hits: 1, misses: 1, evicted: 0 });
        assert_eq!(c.total_bytes(), 5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn entry_cap_evicts_least_recently_used_with_key_tiebreak() {
        let s = Scratch::new("lru-entries");
        let mut c = CacheDir::open(&s.0, None, Some(2)).unwrap();
        c.store("a", b"1").unwrap();
        c.store("b", b"2").unwrap();
        // Touch `a`: `b` becomes least recent.
        assert!(c.load("a").unwrap().is_some());
        c.store("c", b"3").unwrap();
        assert_eq!(keys(&c), vec!["a", "c"], "b was least recently used");
        assert!(!s.0.join("b").exists());
        // Without the touch the order is insertion order: `a` goes next.
        c.store("d", b"4").unwrap();
        assert_eq!(keys(&c), vec!["c", "d"]);
        assert_eq!(c.tally().evicted, 2);
    }

    #[test]
    fn byte_cap_evicts_until_under_but_keeps_newest() {
        let s = Scratch::new("byte-cap");
        let mut c = CacheDir::open(&s.0, Some(10), None).unwrap();
        c.store("a", &[0u8; 4]).unwrap();
        c.store("b", &[0u8; 4]).unwrap();
        c.store("c", &[0u8; 4]).unwrap(); // 12 bytes > 10: evict a
        assert_eq!(keys(&c), vec!["b", "c"]);
        assert_eq!(c.total_bytes(), 8);
        // A single oversized entry survives (never evict the newest).
        c.store("huge", &[0u8; 64]).unwrap();
        assert_eq!(keys(&c), vec!["huge"]);
        assert_eq!(c.tally().evicted, 3);
    }

    #[test]
    fn journal_preserves_order_across_instances() {
        let s = Scratch::new("journal");
        {
            let mut c = CacheDir::open(&s.0, None, None).unwrap();
            c.store("a", b"1").unwrap();
            c.store("b", b"2").unwrap();
            c.store("c", b"3").unwrap();
            // Touch `a`, then persist by storing again (read recency is
            // process-local until the next store).
            assert!(c.load("a").unwrap().is_some());
            c.store("d", b"4").unwrap();
        }
        let mut c = CacheDir::open(&s.0, None, Some(3)).unwrap();
        assert_eq!(c.len(), 4);
        c.enforce_and_persist().unwrap();
        // `b` is least recent in the persisted order (a was touched).
        assert_eq!(keys(&c), vec!["a", "c", "d"]);
    }

    #[test]
    fn untracked_files_are_adopted_in_sorted_order() {
        let s = Scratch::new("adopt");
        std::fs::create_dir_all(&s.0).unwrap();
        // Files written directly (the sweep harness path), no journal.
        std::fs::write(s.0.join("z"), b"zz").unwrap();
        std::fs::write(s.0.join("m"), b"mm").unwrap();
        std::fs::write(s.0.join("a"), b"aa").unwrap();
        std::fs::write(s.0.join(".hidden.tmp"), b"x").unwrap();
        let mut c = CacheDir::open(&s.0, None, Some(2)).unwrap();
        assert_eq!(c.len(), 3, "dotfiles are not entries");
        c.enforce_and_persist().unwrap();
        // Sorted-key adoption order: `a` is oldest, so it goes first.
        assert_eq!(keys(&c), vec!["m", "z"]);
        assert_eq!(c.tally().evicted, 1);
    }

    #[test]
    fn invalid_keys_are_rejected() {
        let s = Scratch::new("badkey");
        let mut c = CacheDir::open(&s.0, None, None).unwrap();
        for bad in ["", ".dot", "a/b", JOURNAL] {
            assert!(matches!(c.store(bad, b"x"), Err(CkptError::Corrupt { .. })), "{bad:?}");
            assert!(matches!(c.load(bad), Err(CkptError::Corrupt { .. })), "{bad:?}");
        }
    }

    #[test]
    fn file_removed_behind_our_back_becomes_a_miss() {
        let s = Scratch::new("stolen");
        let mut c = CacheDir::open(&s.0, None, None).unwrap();
        c.store("a", b"1").unwrap();
        std::fs::remove_file(s.0.join("a")).unwrap();
        assert_eq!(c.load("a").unwrap(), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.tally().misses, 1);
    }
}
