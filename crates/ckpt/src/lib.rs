//! `chainiq-ckpt` — versioned, fingerprinted binary serialization of
//! machine state, with zero external dependencies.
//!
//! The simulator re-simulates every sweep point from cycle 0; the paper's
//! methodology instead samples at checkpoints. This crate is the
//! substrate for warm-started grids: every stateful component implements
//! [`Snapshot`], the pipeline composes component sections into one
//! checkpoint image, and `bench` caches images keyed by (workload
//! fingerprint, config hash).
//!
//! # Format
//!
//! A checkpoint image is:
//!
//! ```text
//! magic            8 bytes  b"CHAINIQK"
//! format version   u16      FORMAT_VERSION; any mismatch rejects
//! workload fp      u64      caller-supplied identity of the instruction stream
//! config hash      u64      caller-supplied identity of the machine config
//! warmup           u64      instructions committed before the snapshot
//! sections         ...      length-prefixed, individually fingerprinted
//! file fingerprint u64      FNV-1a over every preceding byte
//! ```
//!
//! Each section is `name (len-prefixed str) · component version (u16) ·
//! payload length (u64) · payload · payload fingerprint (u64)`. Readers
//! validate magic, format version, section names/versions, both
//! fingerprint layers, and every length against the remaining buffer —
//! a stale, truncated or corrupted image produces a typed [`CkptError`],
//! never a panic and never a partial restore (restore errors are
//! surfaced before any caller uses the half-written state; callers
//! discard the component on error).
//!
//! # Versioning policy
//!
//! [`FORMAT_VERSION`] covers the container layout; each component carries
//! its own [`Snapshot::VERSION`] covering its payload layout. Any change
//! to a packed field list must bump the owning component's version (or
//! the container version for framing changes); old images are then
//! rejected with [`CkptError::ComponentVersion`] instead of being
//! silently misread. There is no cross-version migration: checkpoints
//! are a cache, the cold path always exists.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;

pub use cache::{CacheDir, CacheTally};

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

/// Container format version; bump on any framing change.
pub const FORMAT_VERSION: u16 = 1;

/// Leading magic of every checkpoint image.
pub const MAGIC: [u8; 8] = *b"CHAINIQK";

/// Why a checkpoint image was rejected.
#[derive(Debug)]
pub enum CkptError {
    /// The buffer ended before the declared content did.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// The container format version differs from [`FORMAT_VERSION`].
    FormatVersion {
        /// Version found in the image.
        found: u16,
    },
    /// A section's name or version differs from what the reader expects.
    ComponentVersion {
        /// Section name found in the image.
        component: String,
        /// Version found in the image.
        found: u16,
        /// Version the running binary expects.
        expected: u16,
    },
    /// A fingerprint check failed: the bytes were altered after writing.
    FingerprintMismatch {
        /// Which fingerprint layer failed (`"file"` or a section name).
        context: String,
    },
    /// The image is keyed for a different workload or configuration.
    KeyMismatch {
        /// Human-readable description of the mismatching key.
        context: String,
    },
    /// The payload decoded to an invalid value (bad enum tag, bad bool,
    /// geometry that contradicts the restoring component's config).
    Corrupt {
        /// What was being decoded.
        context: String,
    },
    /// An I/O failure reading or writing a checkpoint file.
    Io(std::io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CkptError::BadMagic => write!(f, "not a chainiq checkpoint (bad magic)"),
            CkptError::FormatVersion { found } => {
                write!(f, "checkpoint format version {found}, this build reads {FORMAT_VERSION}")
            }
            CkptError::ComponentVersion { component, found, expected } => write!(
                f,
                "checkpoint section `{component}` has version {found}, this build reads {expected}"
            ),
            CkptError::FingerprintMismatch { context } => {
                write!(f, "checkpoint fingerprint mismatch in {context} (corrupted image)")
            }
            CkptError::KeyMismatch { context } => {
                write!(f, "checkpoint keyed for a different run: {context}")
            }
            CkptError::Corrupt { context } => {
                write!(f, "checkpoint payload is corrupt: {context}")
            }
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// 64-bit FNV-1a over `bytes` — the content fingerprint of payloads and
/// whole images. Not cryptographic; it guards against corruption and
/// stale partial writes, not adversaries.
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = FpHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher, used for content fingerprints and for the
/// (workload, config) cache keys.
#[derive(Debug, Clone)]
pub struct FpHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FpHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FpHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        FpHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i64` into the state.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Folds a `bool` into the state.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Folds an `f64` (bit pattern) into the state.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a length-prefixed string into the state (prefix keeps
    /// `"ab" + "c"` distinct from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

/// An append-only byte buffer all `pack` methods write into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }
}

/// A cursor over a checkpoint image; every read is bounds-checked and
/// returns [`CkptError::Truncated`] instead of panicking.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf` starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of buffer.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, CkptError> {
        Ok(self.take_bytes(1, context)?[0])
    }

    /// Takes a little-endian `u16`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of buffer.
    pub fn take_u16(&mut self, context: &'static str) -> Result<u16, CkptError> {
        let b = self.take_bytes(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of buffer.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, CkptError> {
        let b = self.take_bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] at end of buffer.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, CkptError> {
        let b = self.take_bytes(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] on short buffers, [`CkptError::Corrupt`]
    /// on invalid UTF-8 or an absurd length.
    pub fn take_str(&mut self, context: &'static str) -> Result<String, CkptError> {
        let len = self.take_len(context)?;
        let bytes = self.take_bytes(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Corrupt { context: format!("{context}: invalid UTF-8") })
    }

    /// Takes a `u64` length prefix, validated against the remaining
    /// buffer so a corrupted length cannot cause a huge allocation.
    ///
    /// # Errors
    /// [`CkptError::Truncated`] if the declared length exceeds what
    /// remains.
    pub fn take_len(&mut self, context: &'static str) -> Result<usize, CkptError> {
        let len = self.take_u64(context)?;
        if len > self.remaining() as u64 {
            return Err(CkptError::Truncated { context });
        }
        Ok(len as usize)
    }
}

// ---------------------------------------------------------------------------
// Pack: field-level serialization
// ---------------------------------------------------------------------------

/// Symmetric binary encode/decode for one value. Component crates
/// implement this for their own state structs; this crate provides the
/// primitive and container impls.
pub trait Pack: Sized {
    /// Appends this value's encoding to `w`.
    fn pack(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    /// Any [`CkptError`] on truncated or invalid input.
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError>;
}

impl Pack for u8 {
    fn pack(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u8("u8")
    }
}

impl Pack for u16 {
    fn pack(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u16("u16")
    }
}

impl Pack for u32 {
    fn pack(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u32("u32")
    }
}

impl Pack for u64 {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_u64("u64")
    }
}

impl Pack for i64 {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(r.take_u64("i64")? as i64)
    }
}

impl Pack for usize {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let v = r.take_u64("usize")?;
        usize::try_from(v)
            .map_err(|_| CkptError::Corrupt { context: format!("usize out of range: {v}") })
    }
}

impl Pack for bool {
    fn pack(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.take_u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Corrupt { context: format!("bool byte {other}") }),
        }
    }
}

impl Pack for f64 {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(f64::from_bits(r.take_u64("f64")?))
    }
}

impl Pack for String {
    fn pack(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.take_str("string")
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.pack(w);
            }
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.take_u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            other => Err(CkptError::Corrupt { context: format!("option tag {other}") }),
        }
    }
}

impl<T: Pack> Pack for Vec<T> {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        // Elements are at least one byte, so the length prefix is checked
        // against the remaining buffer before any allocation.
        let n = r.take_len("vec length")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<T: Pack> Pack for VecDeque<T> {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Vec::<T>::unpack(r)?.into())
    }
}

impl<K: Pack + Ord, V: Pack> Pack for BTreeMap<K, V> {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.pack(w);
            v.pack(w);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.take_len("map length")?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unpack(r)?;
            let v = V::unpack(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Pack + Ord> Pack for BTreeSet<T> {
    fn pack(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.take_len("set length")?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<A: Pack, B: Pack> Pack for (A, B) {
    fn pack(&self, w: &mut Writer) {
        self.0.pack(w);
        self.1.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::unpack(r)?, B::unpack(r)?))
    }
}

impl<A: Pack, B: Pack, C: Pack> Pack for (A, B, C) {
    fn pack(&self, w: &mut Writer) {
        self.0.pack(w);
        self.1.pack(w);
        self.2.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?))
    }
}

impl<T: Pack, const N: usize> Pack for [T; N] {
    fn pack(&self, w: &mut Writer) {
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::unpack(r)?);
        }
        out.try_into().map_err(|_| CkptError::Corrupt { context: "array arity".to_string() })
    }
}

// ---------------------------------------------------------------------------
// Snapshot: component-level sections
// ---------------------------------------------------------------------------

/// A component whose full mutable state can be saved into (and restored
/// from) a named, versioned, fingerprinted checkpoint section.
///
/// `restore` runs on an *already constructed* component (the caller
/// rebuilds it from the run's configuration first) and overwrites every
/// piece of mutable state, so that continuing the simulation after a
/// restore is cycle-for-cycle identical to never having stopped.
/// Implementations must not read clocks or the environment — snapshots
/// are pure functions of machine state (enforced by `chainiq-analyze`
/// rule S1).
pub trait Snapshot {
    /// Stable section name, unique per component.
    const COMPONENT: &'static str;
    /// Payload layout version; bump whenever the packed field list
    /// changes.
    const VERSION: u16;

    /// Packs the component's mutable state.
    fn save(&self, w: &mut Writer);

    /// Overwrites this component's mutable state from `r`.
    ///
    /// # Errors
    /// Any [`CkptError`] on truncated, corrupt, or incompatible input.
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError>;
}

/// Writes one component as a framed section: name, version, payload
/// length, payload, payload fingerprint.
pub fn save_section<T: Snapshot + ?Sized>(w: &mut Writer, component: &T) {
    w.put_str(T::COMPONENT);
    w.put_u16(T::VERSION);
    let mut body = Writer::new();
    component.save(&mut body);
    let payload = body.into_bytes();
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    w.put_u64(fingerprint(&payload));
}

/// Reads one framed section and restores `component` from it, checking
/// name, version, length and fingerprint first.
///
/// # Errors
/// [`CkptError::ComponentVersion`] on a name or version mismatch,
/// [`CkptError::FingerprintMismatch`] on altered payload bytes,
/// [`CkptError::Truncated`]/[`CkptError::Corrupt`] on malformed framing,
/// plus whatever the component's own `restore` reports.
pub fn restore_section<T: Snapshot + ?Sized>(
    r: &mut Reader<'_>,
    component: &mut T,
) -> Result<(), CkptError> {
    let name = r.take_str("section name")?;
    let version = r.take_u16("section version")?;
    if name != T::COMPONENT || version != T::VERSION {
        return Err(CkptError::ComponentVersion {
            component: name,
            found: version,
            expected: T::VERSION,
        });
    }
    let len = r.take_len("section length")?;
    let payload = r.take_bytes(len, "section payload")?;
    let fp = r.take_u64("section fingerprint")?;
    if fingerprint(payload) != fp {
        return Err(CkptError::FingerprintMismatch { context: name });
    }
    let mut body = Reader::new(payload);
    component.restore(&mut body)?;
    if !body.is_exhausted() {
        return Err(CkptError::Corrupt {
            context: format!("section `{}` has {} trailing bytes", T::COMPONENT, body.remaining()),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Whole-image framing
// ---------------------------------------------------------------------------

/// The identity block at the head of every checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptHeader {
    /// Fingerprint of the instruction stream feeding the run (benchmark
    /// profile + generator seed).
    pub workload_fp: u64,
    /// Hash of every configuration input that shapes machine state.
    pub config_hash: u64,
    /// Instructions committed before the snapshot was taken.
    pub warmup: u64,
}

/// Builds a checkpoint image: header, then sections, then the trailing
/// whole-file fingerprint.
#[derive(Debug)]
pub struct ImageWriter {
    w: Writer,
}

impl ImageWriter {
    /// Starts an image with the given identity header.
    #[must_use]
    pub fn new(header: CkptHeader) -> Self {
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u64(header.workload_fp);
        w.put_u64(header.config_hash);
        w.put_u64(header.warmup);
        ImageWriter { w }
    }

    /// Appends one component section.
    pub fn section<T: Snapshot + ?Sized>(&mut self, component: &T) {
        save_section(&mut self.w, component);
    }

    /// Seals the image with its whole-file fingerprint and returns the
    /// bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut buf = self.w.into_bytes();
        let fp = fingerprint(&buf);
        buf.extend_from_slice(&fp.to_le_bytes());
        buf
    }
}

/// Parses and validates a checkpoint image's framing, then yields its
/// sections in order.
#[derive(Debug)]
pub struct ImageReader<'a> {
    header: CkptHeader,
    r: Reader<'a>,
}

impl<'a> ImageReader<'a> {
    /// Validates magic, format version and the whole-file fingerprint.
    ///
    /// # Errors
    /// [`CkptError::BadMagic`], [`CkptError::FormatVersion`],
    /// [`CkptError::FingerprintMismatch`] or [`CkptError::Truncated`].
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CkptError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CkptError::Truncated { context: "image header" });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        if body.len() < MAGIC.len() || body[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        if fingerprint(body) != declared {
            return Err(CkptError::FingerprintMismatch { context: "file".to_string() });
        }
        let mut r = Reader::new(body);
        let _ = r.take_bytes(MAGIC.len(), "magic")?;
        let version = r.take_u16("format version")?;
        if version != FORMAT_VERSION {
            return Err(CkptError::FormatVersion { found: version });
        }
        let header = CkptHeader {
            workload_fp: r.take_u64("workload fingerprint")?,
            config_hash: r.take_u64("config hash")?,
            warmup: r.take_u64("warmup count")?,
        };
        Ok(ImageReader { header, r })
    }

    /// The identity header of this image.
    #[must_use]
    pub fn header(&self) -> CkptHeader {
        self.header
    }

    /// Validates this image's identity against the run about to restore
    /// from it.
    ///
    /// # Errors
    /// [`CkptError::KeyMismatch`] naming the first differing field.
    pub fn expect_key(&self, expected: CkptHeader) -> Result<(), CkptError> {
        let found = self.header;
        if found.workload_fp != expected.workload_fp {
            return Err(CkptError::KeyMismatch {
                context: format!(
                    "workload fingerprint {:#018x}, expected {:#018x}",
                    found.workload_fp, expected.workload_fp
                ),
            });
        }
        if found.config_hash != expected.config_hash {
            return Err(CkptError::KeyMismatch {
                context: format!(
                    "config hash {:#018x}, expected {:#018x}",
                    found.config_hash, expected.config_hash
                ),
            });
        }
        if found.warmup != expected.warmup {
            return Err(CkptError::KeyMismatch {
                context: format!("warmup {}, expected {}", found.warmup, expected.warmup),
            });
        }
        Ok(())
    }

    /// Restores the next section into `component`.
    ///
    /// # Errors
    /// Propagates [`restore_section`]'s errors.
    pub fn section<T: Snapshot + ?Sized>(&mut self, component: &mut T) -> Result<(), CkptError> {
        restore_section(&mut self.r, component)
    }

    /// Confirms every byte of the image has been consumed.
    ///
    /// # Errors
    /// [`CkptError::Corrupt`] if sections remain unread.
    pub fn finish(self) -> Result<(), CkptError> {
        if !self.r.is_exhausted() {
            return Err(CkptError::Corrupt {
                context: format!("{} trailing bytes after the last section", self.r.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Reads a checkpoint image from disk.
///
/// # Errors
/// [`CkptError::Io`] on any filesystem failure.
pub fn read_image(path: &Path) -> Result<Vec<u8>, CkptError> {
    Ok(std::fs::read(path)?)
}

/// Atomically writes a checkpoint image: the bytes land under a unique
/// temporary name in the destination directory and are renamed into
/// place, so concurrent readers (parallel sweep workers) either see the
/// complete image or none at all, and concurrent writers of the same key
/// harmlessly last-write-win the identical bytes.
///
/// # Errors
/// [`CkptError::Io`] on any filesystem failure.
pub fn write_image_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
        std::process::id(),
        next_tmp_id(),
    ));
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(CkptError::Io)
}

/// Process-wide counter making concurrent temp names unique across
/// threads of one sweep (the pid handles cross-process uniqueness).
fn next_tmp_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        42u8.pack(&mut w);
        7u16.pack(&mut w);
        9u32.pack(&mut w);
        u64::MAX.pack(&mut w);
        (-5i64).pack(&mut w);
        123usize.pack(&mut w);
        true.pack(&mut w);
        false.pack(&mut w);
        1.5f64.pack(&mut w);
        "héllo".to_string().pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::unpack(&mut r).unwrap(), 42);
        assert_eq!(u16::unpack(&mut r).unwrap(), 7);
        assert_eq!(u32::unpack(&mut r).unwrap(), 9);
        assert_eq!(u64::unpack(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::unpack(&mut r).unwrap(), -5);
        assert_eq!(usize::unpack(&mut r).unwrap(), 123);
        assert!(bool::unpack(&mut r).unwrap());
        assert!(!bool::unpack(&mut r).unwrap());
        assert_eq!(f64::unpack(&mut r).unwrap(), 1.5);
        assert_eq!(String::unpack(&mut r).unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<u32> = VecDeque::from(vec![4, 5]);
        let m: BTreeMap<u64, bool> = [(1, true), (9, false)].into_iter().collect();
        let s: BTreeSet<(u64, u64)> = [(1, 2), (3, 4)].into_iter().collect();
        let o: Option<u8> = Some(7);
        let n: Option<u8> = None;
        let t: (u64, bool, i64) = (1, true, -1);
        let a: [u16; 3] = [10, 20, 30];
        let mut w = Writer::new();
        v.pack(&mut w);
        d.pack(&mut w);
        m.pack(&mut w);
        s.pack(&mut w);
        o.pack(&mut w);
        n.pack(&mut w);
        t.pack(&mut w);
        a.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<u64>::unpack(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<u32>::unpack(&mut r).unwrap(), d);
        assert_eq!(BTreeMap::<u64, bool>::unpack(&mut r).unwrap(), m);
        assert_eq!(BTreeSet::<(u64, u64)>::unpack(&mut r).unwrap(), s);
        assert_eq!(Option::<u8>::unpack(&mut r).unwrap(), o);
        assert_eq!(Option::<u8>::unpack(&mut r).unwrap(), n);
        assert_eq!(<(u64, bool, i64)>::unpack(&mut r).unwrap(), t);
        assert_eq!(<[u16; 3]>::unpack(&mut r).unwrap(), a);
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        weird.pack(&mut w);
        let bytes = w.into_bytes();
        let got = f64::unpack(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = Writer::new();
        12345u64.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(u64::unpack(&mut r), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // vec claims 2^64-1 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(Vec::<u8>::unpack(&mut r), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn bad_bool_and_bad_option_tag_are_corrupt() {
        let bytes = [7u8];
        assert!(matches!(bool::unpack(&mut Reader::new(&bytes)), Err(CkptError::Corrupt { .. })));
        assert!(matches!(
            Option::<u8>::unpack(&mut Reader::new(&bytes)),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        // Pinned value: the FNV-1a digest of "chainiq" must never drift,
        // or every committed checkpoint invalidates silently.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        let a = fingerprint(b"chainiq");
        assert_eq!(a, fingerprint(b"chainiq"));
        assert_ne!(a, fingerprint(b"chainiq!"));
        let mut h = FpHasher::new();
        h.write_bytes(b"chai");
        h.write_bytes(b"niq");
        assert_eq!(h.finish(), a);
    }

    #[test]
    fn hasher_str_framing_prevents_concat_collisions() {
        let mut a = FpHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = FpHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    struct Toy {
        xs: Vec<u64>,
        flag: bool,
    }

    impl Snapshot for Toy {
        const COMPONENT: &'static str = "toy";
        const VERSION: u16 = 3;
        fn save(&self, w: &mut Writer) {
            self.xs.pack(w);
            self.flag.pack(w);
        }
        fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
            self.xs = Vec::unpack(r)?;
            self.flag = bool::unpack(r)?;
            Ok(())
        }
    }

    fn toy_image() -> Vec<u8> {
        let mut img = ImageWriter::new(CkptHeader { workload_fp: 11, config_hash: 22, warmup: 33 });
        img.section(&Toy { xs: vec![1, 2, 3], flag: true });
        img.finish()
    }

    #[test]
    fn image_round_trip() {
        let bytes = toy_image();
        let mut img = ImageReader::parse(&bytes).unwrap();
        assert_eq!(img.header(), CkptHeader { workload_fp: 11, config_hash: 22, warmup: 33 });
        img.expect_key(CkptHeader { workload_fp: 11, config_hash: 22, warmup: 33 }).unwrap();
        let mut toy = Toy { xs: Vec::new(), flag: false };
        img.section(&mut toy).unwrap();
        img.finish().unwrap();
        assert_eq!(toy.xs, vec![1, 2, 3]);
        assert!(toy.flag);
    }

    #[test]
    fn wrong_key_is_key_mismatch() {
        let bytes = toy_image();
        let img = ImageReader::parse(&bytes).unwrap();
        let err = img
            .expect_key(CkptHeader { workload_fp: 99, config_hash: 22, warmup: 33 })
            .unwrap_err();
        assert!(matches!(err, CkptError::KeyMismatch { .. }), "{err}");
        let err = img
            .expect_key(CkptHeader { workload_fp: 11, config_hash: 99, warmup: 33 })
            .unwrap_err();
        assert!(matches!(err, CkptError::KeyMismatch { .. }), "{err}");
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        // Exhaustive over the toy image: flipping any one bit anywhere
        // must produce a typed error, never a silent wrong restore.
        let bytes = toy_image();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                let outcome = ImageReader::parse(&evil).and_then(|mut img| {
                    let mut toy = Toy { xs: Vec::new(), flag: false };
                    img.section(&mut toy)?;
                    img.finish()
                });
                assert!(outcome.is_err(), "bit flip at byte {byte} bit {bit} went unnoticed");
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = toy_image();
        for cut in 0..bytes.len() {
            let outcome = ImageReader::parse(&bytes[..cut]).and_then(|mut img| {
                let mut toy = Toy { xs: Vec::new(), flag: false };
                img.section(&mut toy)?;
                img.finish()
            });
            assert!(outcome.is_err(), "truncation to {cut} bytes went unnoticed");
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let bytes = toy_image();
        // The format version lives right after the 8-byte magic; patching
        // it also requires re-sealing the file fingerprint — which is
        // exactly what an in-place format migration would do.
        let mut bumped = bytes[..bytes.len() - 8].to_vec();
        bumped[8] = (FORMAT_VERSION + 1) as u8;
        let fp = fingerprint(&bumped);
        bumped.extend_from_slice(&fp.to_le_bytes());
        assert!(matches!(
            ImageReader::parse(&bumped),
            Err(CkptError::FormatVersion { found }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn component_version_drift_is_rejected() {
        struct ToyV4(Toy);
        impl Snapshot for ToyV4 {
            const COMPONENT: &'static str = "toy";
            const VERSION: u16 = 4;
            fn save(&self, w: &mut Writer) {
                self.0.save(w);
            }
            fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
                self.0.restore(r)
            }
        }
        let bytes = toy_image();
        let mut img = ImageReader::parse(&bytes).unwrap();
        let mut toy = ToyV4(Toy { xs: Vec::new(), flag: false });
        let err = img.section(&mut toy).unwrap_err();
        assert!(matches!(err, CkptError::ComponentVersion { found: 3, expected: 4, .. }), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = toy_image();
        bytes[0] = b'X';
        assert!(matches!(
            ImageReader::parse(&bytes),
            // The file fingerprint covers the magic too, so either error
            // is acceptable; what matters is rejection with a typed error.
            Err(CkptError::BadMagic | CkptError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn atomic_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("chainiq-ckpt-test-{}", std::process::id()));
        let path = dir.join("toy.ckpt");
        let bytes = toy_image();
        write_image_atomic(&path, &bytes).unwrap();
        assert_eq!(read_image(&path).unwrap(), bytes);
        // Overwrite is fine (last write wins).
        write_image_atomic(&path, &bytes).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_image(Path::new("/nonexistent/chainiq/toy.ckpt")).unwrap_err();
        assert!(matches!(err, CkptError::Io(_)));
    }

    #[test]
    fn errors_display_useful_text() {
        let cases: Vec<CkptError> = vec![
            CkptError::Truncated { context: "u64" },
            CkptError::BadMagic,
            CkptError::FormatVersion { found: 9 },
            CkptError::ComponentVersion { component: "iq".into(), found: 1, expected: 2 },
            CkptError::FingerprintMismatch { context: "file".into() },
            CkptError::KeyMismatch { context: "warmup 1, expected 2".into() },
            CkptError::Corrupt { context: "bool byte 7".into() },
            CkptError::Io(std::io::Error::other("nope")),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
