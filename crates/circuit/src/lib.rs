//! Wakeup/select circuit-delay model, after Palacharla, Jouppi & Smith
//! ("Complexity-Effective Superscalar Processors", ISCA 1996) — the
//! analysis the paper's §1 builds on: *"The latency of wakeup logic ...
//! increases quadratically with both issue width and instruction queue
//! size."*
//!
//! The IPC experiments in `chainiq-bench` compare designs at equal clock;
//! this crate supplies the other half of the paper's argument. A
//! monolithic queue's wakeup/select path grows quadratically with its
//! size, while the segmented design's critical path is set by one
//! 32-entry segment regardless of total capacity. Multiplying each
//! design's IPC by its achievable clock turns Figure 3's IPC curves into
//! the throughput (BIPS) comparison the paper argues for in prose.
//!
//! # Model
//!
//! * **Wakeup** — an issue-width set of result tags is driven down a CAM
//!   column of `entries` rows; each row compares and ORs its match lines.
//!   Tag-drive delay is RC-quadratic in wire length (∝ entries) and the
//!   driven load grows with issue width, giving the
//!   `c₀ + c₁·W·E + c₂·W²·E²` shape of Palacharla's fitted curves.
//! * **Select** — a tree of arbiters with fan-in 4: delay ∝ ⌈log₄ E⌉.
//! * **Segmented queue** — wakeup+select span one segment; the promotion
//!   select of an upper segment has identical structure, so the critical
//!   path is that of a conventional queue of *segment* size (§3: "the
//!   latency of this critical path is determined by the size of each
//!   segment, not the overall queue size"), plus a small constant for
//!   the chain-wire receive latch.
//!
//! The technology constants are *synthetic*: chosen so the relative
//! scaling reproduces Palacharla's published shape (documented in
//! `DESIGN.md`), because the paper makes only a relative claim. Absolute
//! picoseconds should not be quoted.
//!
//! # Examples
//!
//! ```
//! use chainiq_circuit::{QueueGeometry, Technology};
//!
//! let tech = Technology::default();
//! let small = tech.cycle_time(QueueGeometry::monolithic(32, 8));
//! let large = tech.cycle_time(QueueGeometry::monolithic(512, 8));
//! let segmented = tech.cycle_time(QueueGeometry::segmented(512, 32, 8));
//! assert!(large > 2.0 * small, "a 512-entry CAM is far slower");
//! assert!(segmented < 1.2 * small, "segments clock like small queues");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Geometry of the scheduling structure whose critical path is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueGeometry {
    /// Entries searched by one wakeup/select operation.
    pub searched_entries: usize,
    /// Result tags broadcast per cycle (issue width).
    pub issue_width: usize,
    /// Extra latch/mux stages on the critical path (0 for a monolithic
    /// queue; 1 for the segmented queue's chain-wire receive and
    /// promotion mux).
    pub extra_stages: usize,
}

impl QueueGeometry {
    /// A conventional monolithic queue: every entry searched each cycle.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn monolithic(entries: usize, issue_width: usize) -> Self {
        assert!(entries > 0 && issue_width > 0);
        QueueGeometry { searched_entries: entries, issue_width, extra_stages: 0 }
    }

    /// A segmented queue: wakeup/select only ever touch one segment; one
    /// extra stage accounts for the chain-wire receive latch and the
    /// two-input bypass mux of §4.2.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or the segment exceeds the total.
    #[must_use]
    pub fn segmented(total_entries: usize, segment_size: usize, issue_width: usize) -> Self {
        assert!(total_entries > 0 && segment_size > 0 && issue_width > 0);
        assert!(segment_size <= total_entries);
        QueueGeometry { searched_entries: segment_size, issue_width, extra_stages: 1 }
    }

    /// A prescheduling queue: only the associative issue buffer is
    /// searched; the array shift adds one stage.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn prescheduled(issue_buffer: usize, issue_width: usize) -> Self {
        assert!(issue_buffer > 0 && issue_width > 0);
        QueueGeometry { searched_entries: issue_buffer, issue_width, extra_stages: 1 }
    }
}

/// Synthetic technology constants (see the crate docs for why synthetic).
///
/// The default corresponds loosely to the paper's era (a 0.18 µm-class
/// process): a 32-entry, 8-wide wakeup+select fits in roughly a 1 GHz+
/// cycle, and a 512-entry CAM does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Fixed overhead per wakeup (precharge, sense) in picoseconds.
    pub wakeup_base_ps: f64,
    /// Linear tag-drive coefficient, ps per (issue-width × entry).
    pub wakeup_linear_ps: f64,
    /// Quadratic wire-RC coefficient, ps per (issue-width × entry)².
    pub wakeup_quadratic_ps: f64,
    /// Delay per level of the fan-in-4 selection tree, ps.
    pub select_per_level_ps: f64,
    /// Fixed selection overhead (request generation, grant fan-out), ps.
    pub select_base_ps: f64,
    /// Cost of one extra latch/mux stage, ps.
    pub stage_ps: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Technology {
            wakeup_base_ps: 120.0,
            wakeup_linear_ps: 0.9,
            wakeup_quadratic_ps: 0.000_45,
            select_per_level_ps: 60.0,
            select_base_ps: 60.0,
            stage_ps: 30.0,
        }
    }
}

impl Technology {
    /// Wakeup-logic delay in picoseconds: tag drive across
    /// `searched_entries` rows with `issue_width` tag buses, plus match.
    #[must_use]
    pub fn wakeup_delay_ps(&self, g: QueueGeometry) -> f64 {
        let we = (g.issue_width * g.searched_entries) as f64;
        self.wakeup_base_ps + self.wakeup_linear_ps * we + self.wakeup_quadratic_ps * we * we
    }

    /// Selection-logic delay in picoseconds: a fan-in-4 arbiter tree over
    /// the searched entries.
    #[must_use]
    pub fn select_delay_ps(&self, g: QueueGeometry) -> f64 {
        let levels = levels_of_4(g.searched_entries);
        self.select_base_ps + self.select_per_level_ps * levels as f64
    }

    /// The wakeup+select critical path in picoseconds — the cycle-time
    /// floor imposed by the scheduling structure (wakeup and select form
    /// an atomic loop, §1).
    #[must_use]
    pub fn cycle_time(&self, g: QueueGeometry) -> f64 {
        self.wakeup_delay_ps(g) + self.select_delay_ps(g) + self.stage_ps * g.extra_stages as f64
    }

    /// Achievable scheduler-limited clock in GHz.
    #[must_use]
    pub fn clock_ghz(&self, g: QueueGeometry) -> f64 {
        1000.0 / self.cycle_time(g)
    }

    /// Billions of instructions per second for a design with the given
    /// per-cycle IPC: the combined metric the paper argues about in
    /// prose (IPC from simulation × clock from this model).
    #[must_use]
    pub fn bips(&self, g: QueueGeometry, ipc: f64) -> f64 {
        ipc * self.clock_ghz(g)
    }
}

/// Levels of a fan-in-4 tree covering `n` leaves.
fn levels_of_4(n: usize) -> u32 {
    let mut levels = 0;
    let mut covered = 1usize;
    while covered < n {
        covered *= 4;
        levels += 1;
    }
    levels.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_grows_quadratically_with_window() {
        let t = Technology::default();
        let d32 = t.wakeup_delay_ps(QueueGeometry::monolithic(32, 8));
        let d128 = t.wakeup_delay_ps(QueueGeometry::monolithic(128, 8));
        let d512 = t.wakeup_delay_ps(QueueGeometry::monolithic(512, 8));
        assert!(d128 > 2.0 * d32, "4x entries must cost over 2x: {d32} -> {d128}");
        assert!(d512 > 3.0 * d128, "the quadratic term dominates at 512: {d128} -> {d512}");
    }

    #[test]
    fn wakeup_grows_with_issue_width() {
        let t = Technology::default();
        let w4 = t.wakeup_delay_ps(QueueGeometry::monolithic(128, 4));
        let w8 = t.wakeup_delay_ps(QueueGeometry::monolithic(128, 8));
        assert!(w8 > 1.5 * w4);
    }

    #[test]
    fn select_grows_logarithmically() {
        let t = Technology::default();
        let s16 = t.select_delay_ps(QueueGeometry::monolithic(16, 8));
        let s64 = t.select_delay_ps(QueueGeometry::monolithic(64, 8));
        let s256 = t.select_delay_ps(QueueGeometry::monolithic(256, 8));
        assert_eq!(s64 - s16, s256 - s64, "one level per 4x leaves");
    }

    #[test]
    fn segmented_cycle_time_is_size_independent() {
        let t = Technology::default();
        let s128 = t.cycle_time(QueueGeometry::segmented(128, 32, 8));
        let s512 = t.cycle_time(QueueGeometry::segmented(512, 32, 8));
        assert_eq!(s128, s512, "only the segment size matters");
    }

    #[test]
    fn segmented_512_clocks_near_monolithic_32() {
        let t = Technology::default();
        let seg = t.cycle_time(QueueGeometry::segmented(512, 32, 8));
        let small = t.cycle_time(QueueGeometry::monolithic(32, 8));
        let big = t.cycle_time(QueueGeometry::monolithic(512, 8));
        assert!(seg < 1.2 * small, "segment-local critical path: {seg} vs {small}");
        assert!(big > 3.0 * seg, "the monolithic 512 is several times slower: {big} vs {seg}");
    }

    #[test]
    fn bips_combines_ipc_and_clock() {
        let t = Technology::default();
        // The paper's trade: 81% of the IPC at (much) higher clock wins.
        let ideal512 = QueueGeometry::monolithic(512, 8);
        let seg512 = QueueGeometry::segmented(512, 32, 8);
        let ideal_bips = t.bips(ideal512, 1.0);
        let seg_bips = t.bips(seg512, 0.81);
        assert!(seg_bips > ideal_bips, "{seg_bips} vs {ideal_bips}");
    }

    #[test]
    fn default_clock_is_plausible_for_the_era() {
        let t = Technology::default();
        let ghz = t.clock_ghz(QueueGeometry::monolithic(32, 8));
        assert!((1.0..4.0).contains(&ghz), "32-entry queue near 1-4 GHz: {ghz}");
    }

    #[test]
    fn levels_of_4_table() {
        assert_eq!(levels_of_4(1), 1);
        assert_eq!(levels_of_4(4), 1);
        assert_eq!(levels_of_4(5), 2);
        assert_eq!(levels_of_4(16), 2);
        assert_eq!(levels_of_4(32), 3);
        assert_eq!(levels_of_4(64), 3);
        assert_eq!(levels_of_4(65), 4);
    }

    #[test]
    #[should_panic]
    fn zero_entries_panics() {
        let _ = QueueGeometry::monolithic(0, 8);
    }

    #[test]
    #[should_panic]
    fn oversized_segment_panics() {
        let _ = QueueGeometry::segmented(32, 64, 8);
    }
}
