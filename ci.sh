#!/usr/bin/env bash
# Canonical verification for chainiq. The workspace is hermetic: it has
# zero crates.io dependencies, so everything here must succeed against an
# empty registry — hence --offline on every cargo invocation. If a step
# fails under --offline but passes without it, a registry dependency has
# crept back in; see DESIGN.md §7.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== cargo clippy --offline (-D warnings)"
cargo clippy --offline --workspace -- -D warnings

echo "== chainiq-analyze (project-specific invariants, tight ratchets)"
ANALYZE_JSON="$(mktemp)"
trap 'rm -f "$ANALYZE_JSON"' EXIT  # widened below once PERF_DIR exists
cargo run -p chainiq-analyze --release --offline -- --check-tight --json "$ANALYZE_JSON"
[ -s "$ANALYZE_JSON" ] || { echo "ci.sh: analyze --json artifact missing or empty" >&2; exit 1; }

echo "== cargo fmt --check"
cargo fmt --check

echo "== perf gate smoke: --bin perf at a tiny sample into a scratch dir"
PERF_DIR="$(mktemp -d)"
trap 'rm -f "$ANALYZE_JSON"; rm -rf "$PERF_DIR"' EXIT
CHAINIQ_SAMPLE=1000 CHAINIQ_BENCH_DIR="$PERF_DIR" \
    CHAINIQ_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    cargo run -p chainiq-bench --release --bin perf --offline >/dev/null
PERF_JSON="$PERF_DIR/BENCH_perf.json"
PERF_HISTORY="$PERF_DIR/BENCH_perf_history.jsonl"
[ -s "$PERF_JSON" ] || { echo "ci.sh: BENCH_perf.json missing or empty" >&2; exit 1; }
[ -s "$PERF_HISTORY" ] || { echo "ci.sh: BENCH_perf_history.jsonl missing or empty" >&2; exit 1; }
# Artifact consistency is checked hermetically in Rust (no python3 in
# the toolchain anymore): suite/points/aggregate sanity, history point
# set + rev label, and matrix identity with the committed artifact.
cargo run -p chainiq-analyze --release --offline -- \
    --check-perf "$PERF_JSON" "$PERF_HISTORY" results/BENCH_perf.json

echo "== sweep smoke: fig3 on 2 workers at a small sample"
CHAINIQ_SAMPLE=2000 CHAINIQ_JOBS=2 \
    cargo run -p chainiq-bench --release --bin fig3 --offline >/dev/null

echo "== checkpoint smoke: snapshot, restore, compare (cold vs cached stdout)"
# First cached run simulates cold and saves warmup images; the second
# restores them (serial) and the third restores them concurrently. All
# three must render byte-identical tables to the uncached run.
CKPT_CACHE="$PERF_DIR/ckpt-cache"
run_fig3() {
    CHAINIQ_SAMPLE=2000 CHAINIQ_BENCH_DIR="$PERF_DIR" "$@" \
        cargo run -p chainiq-bench --release --bin fig3 --offline
}
run_fig3 env CHAINIQ_JOBS=1 > "$PERF_DIR/fig3-cold.txt"
run_fig3 env CHAINIQ_JOBS=1 CHAINIQ_CKPT=1 CHAINIQ_CKPT_DIR="$CKPT_CACHE" \
    > "$PERF_DIR/fig3-save.txt"
run_fig3 env CHAINIQ_JOBS=1 CHAINIQ_CKPT=1 CHAINIQ_CKPT_DIR="$CKPT_CACHE" \
    > "$PERF_DIR/fig3-restore.txt"
run_fig3 env CHAINIQ_JOBS=4 CHAINIQ_CKPT=1 CHAINIQ_CKPT_DIR="$CKPT_CACHE" \
    > "$PERF_DIR/fig3-restore-par.txt"
cmp "$PERF_DIR/fig3-cold.txt" "$PERF_DIR/fig3-save.txt" \
    || { echo "ci.sh: checkpoint-saving run diverged from cold stdout" >&2; exit 1; }
cmp "$PERF_DIR/fig3-cold.txt" "$PERF_DIR/fig3-restore.txt" \
    || { echo "ci.sh: checkpoint-restored run diverged from cold stdout" >&2; exit 1; }
cmp "$PERF_DIR/fig3-cold.txt" "$PERF_DIR/fig3-restore-par.txt" \
    || { echo "ci.sh: concurrent checkpoint-restored run diverged from cold stdout" >&2; exit 1; }
[ -n "$(ls -A "$CKPT_CACHE" 2>/dev/null)" ] \
    || { echo "ci.sh: checkpoint cache directory is empty after a caching run" >&2; exit 1; }

echo "== serve smoke: daemon + storm twice over loopback, hits must be byte-stable"
# The daemon binds an ephemeral port and publishes it via --addr-file.
# The first storm pass populates the result cache; the second runs the
# same deterministic job stream and must be answered entirely from it
# (storm itself asserts byte-identity of every repeated response, and
# --expect-warm-all-hits makes a single re-simulation fatal).
SERVE_DIR="$PERF_DIR/serve"
mkdir -p "$SERVE_DIR"
CHAINIQ_BENCH_DIR="$SERVE_DIR" ./target/release/chainiq-serve \
    --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr" --workers 2 \
    2> "$SERVE_DIR/daemon.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -f "$ANALYZE_JSON"; rm -rf "$PERF_DIR"' EXIT
for _ in $(seq 1 100); do [ -s "$SERVE_DIR/addr" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/addr" ] \
    || { echo "ci.sh: chainiq-serve never published its address" >&2; exit 1; }
SERVE_ADDR="$(cat "$SERVE_DIR/addr")"
run_storm() {
    CHAINIQ_BENCH_DIR="$SERVE_DIR" \
        CHAINIQ_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
        ./target/release/storm --addr "$SERVE_ADDR" \
        --clients 4 --total 40 --distinct 8 --sample 2000 --hit-ratio 1.0 "$@"
}
run_storm >/dev/null
run_storm --expect-warm-all-hits >/dev/null \
    || { echo "ci.sh: second storm pass re-simulated or diverged" >&2; exit 1; }
./target/release/storm --addr "$SERVE_ADDR" --shutdown 2>/dev/null
wait "$SERVE_PID" \
    || { echo "ci.sh: chainiq-serve exited uncleanly" >&2; cat "$SERVE_DIR/daemon.log" >&2; exit 1; }
cargo run -p chainiq-analyze --release --offline -- \
    --check-serve "$SERVE_DIR/BENCH_serve.json" "$SERVE_DIR/BENCH_serve_history.jsonl" \
    results/BENCH_serve.json

echo "ci.sh: all checks passed"
