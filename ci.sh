#!/usr/bin/env bash
# Canonical verification for chainiq. The workspace is hermetic: it has
# zero crates.io dependencies, so everything here must succeed against an
# empty registry — hence --offline on every cargo invocation. If a step
# fails under --offline but passes without it, a registry dependency has
# crept back in; see DESIGN.md §7.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== cargo clippy --offline (-D warnings)"
cargo clippy --offline --workspace -- -D warnings

echo "== chainiq-analyze (project-specific invariants)"
cargo run -p chainiq-analyze --release --offline

echo "== cargo fmt --check"
cargo fmt --check

echo "== perf gate smoke: --bin perf at a tiny sample into a scratch dir"
PERF_DIR="$(mktemp -d)"
trap 'rm -rf "$PERF_DIR"' EXIT
CHAINIQ_SAMPLE=1000 CHAINIQ_BENCH_DIR="$PERF_DIR" \
    cargo run -p chainiq-bench --release --bin perf --offline >/dev/null
PERF_JSON="$PERF_DIR/BENCH_perf.json"
[ -s "$PERF_JSON" ] || { echo "ci.sh: BENCH_perf.json missing or empty" >&2; exit 1; }
python3 - "$PERF_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
agg = doc["aggregate"]["sim_kcycles_per_sec"]
assert doc["suite"] == "perf", doc["suite"]
assert doc["points"], "no points"
assert agg > 0, agg
EOF

echo "== sweep smoke: fig3 on 2 workers at a small sample"
CHAINIQ_SAMPLE=2000 CHAINIQ_JOBS=2 \
    cargo run -p chainiq-bench --release --bin fig3 --offline >/dev/null

echo "ci.sh: all checks passed"
